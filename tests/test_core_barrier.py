"""Tests for the thread synchronization barrier (paper §IV-C, Fig. 8)."""

import pytest

from repro.core import (
    FREE,
    IDLE,
    WAIT,
    Barrier,
    FullMEB,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
)
from repro.kernel import build

from tests.conftest import MEB_CLASSES


def make_barrier_system(meb_cls, items, threads, participants=None,
                        src_patterns=None, on_release=None):
    """source -> MEB -> barrier -> sink."""
    c0 = MTChannel("c0", threads=threads)
    c1 = MTChannel("c1", threads=threads)
    c2 = MTChannel("c2", threads=threads)
    src = MTSource("src", c0, items=items, patterns=src_patterns)
    meb = meb_cls("meb", c0, c1)
    bar = Barrier("bar", c1, c2, participants=participants,
                  on_release=on_release)
    sink = MTSink("snk", c2)
    mon = MTMonitor("mon", c2)
    sim = build(c0, c1, c2, src, meb, bar, sink, mon)
    return sim, src, sink, bar, mon


@pytest.mark.parametrize("meb_cls", MEB_CLASSES)
class TestBarrierBasics:
    def test_nothing_passes_until_all_arrive(self, meb_cls):
        # Thread 2 injects late (cycle 12); nothing may pass before then.
        items = [[f"T{t}"] for t in range(3)]
        sim, _src, sink, _bar, _mon = make_barrier_system(
            meb_cls, items, threads=3,
            src_patterns=[None, None, lambda c: c >= 12],
        )
        sim.run(cycles=12)
        assert sink.count == 0

    def test_all_released_after_last_arrival(self, meb_cls):
        items = [[f"T{t}"] for t in range(3)]
        sim, _src, sink, bar, _mon = make_barrier_system(
            meb_cls, items, threads=3,
            src_patterns=[None, None, lambda c: c >= 12],
        )
        sim.run(until=lambda s: sink.count == 3, max_cycles=80)
        assert sorted(d for _c, _t, d in sink.received) == ["T0", "T1", "T2"]
        assert bar.releases == 1

    def test_go_flag_flips_per_release(self, meb_cls):
        items = [["a1", "a2"], ["b1", "b2"]]
        sim, _src, sink, bar, _mon = make_barrier_system(
            meb_cls, items, threads=2
        )
        assert bar.go is False
        sim.run(until=lambda s: bar.releases == 1, max_cycles=60)
        assert bar.go is True
        sim.run(until=lambda s: bar.releases == 2, max_cycles=60)
        assert bar.go is False

    def test_multiple_rounds(self, meb_cls):
        rounds = 4
        items = [[f"A{r}" for r in range(rounds)],
                 [f"B{r}" for r in range(rounds)]]
        sim, _src, sink, bar, _mon = make_barrier_system(
            meb_cls, items, threads=2
        )
        sim.run(until=lambda s: sink.count == 2 * rounds, max_cycles=300)
        assert bar.releases == rounds
        assert sink.values_for(0) == [f"A{r}" for r in range(rounds)]
        assert sink.values_for(1) == [f"B{r}" for r in range(rounds)]

    def test_counter_resets_on_release(self, meb_cls):
        items = [["a"], ["b"]]
        sim, _src, _sink, bar, _mon = make_barrier_system(
            meb_cls, items, threads=2
        )
        sim.run(until=lambda s: bar.releases == 1, max_cycles=40)
        assert bar.count == 0

    def test_on_release_callback(self, meb_cls):
        calls = []
        items = [["a1", "a2"], ["b1", "b2"]]
        sim, _src, sink, _bar, _mon = make_barrier_system(
            meb_cls, items, threads=2, on_release=calls.append
        )
        sim.run(until=lambda s: sink.count == 4, max_cycles=120)
        assert calls == [1, 2]


class TestBarrierFSM:
    def test_states_progress_idle_wait_free(self):
        items = [["a"], ["b"]]
        sim, _src, _sink, bar, _mon = make_barrier_system(
            FullMEB, items, threads=2,
            src_patterns=[None, lambda c: c >= 8],
        )
        assert bar.thread_state(0) == IDLE
        # Thread 0 arrives early and waits.
        sim.run(cycles=4)
        assert bar.thread_state(0) == WAIT
        assert bar.thread_state(1) == IDLE
        assert bar.count == 1
        # Thread 1 arrives; next cycle both are FREE (or already drained).
        sim.run(until=lambda s: bar.thread_state(0) == FREE, max_cycles=20)
        assert bar.thread_state(1) in (FREE, IDLE)

    def test_thread_returns_to_idle_after_passing(self):
        items = [["a"], ["b"]]
        sim, _src, sink, bar, _mon = make_barrier_system(
            FullMEB, items, threads=2
        )
        sim.run(until=lambda s: sink.count == 2, max_cycles=40)
        sim.run(cycles=2)
        assert bar.thread_state(0) == IDLE
        assert bar.thread_state(1) == IDLE


class TestPartialParticipation:
    def test_nonparticipants_pass_freely(self):
        # Threads 0,1 synchronize; thread 2 is independent and flows
        # through even though the barrier is still waiting for thread 1.
        items = [["a"], [], ["z1", "z2", "z3"]]
        sim, _src, sink, bar, _mon = make_barrier_system(
            FullMEB, items, threads=3, participants=[0, 1]
        )
        sim.run(cycles=30)
        assert sink.values_for(2) == ["z1", "z2", "z3"]
        assert sink.count_for(0) == 0  # still waiting for thread 1
        assert bar.thread_state(0) == WAIT

    def test_release_with_participant_subset(self):
        items = [["a"], ["b"], ["z"]]
        sim, _src, sink, bar, _mon = make_barrier_system(
            FullMEB, items, threads=3, participants=[0, 1]
        )
        sim.run(until=lambda s: sink.count == 3, max_cycles=60)
        assert bar.releases == 1

    def test_empty_participants_rejected(self):
        c1 = MTChannel("c1", threads=2)
        c2 = MTChannel("c2", threads=2)
        with pytest.raises(ValueError):
            Barrier("bar", c1, c2, participants=[])

    def test_out_of_range_participant_rejected(self):
        c1 = MTChannel("c1", threads=2)
        c2 = MTChannel("c2", threads=2)
        with pytest.raises(ValueError):
            Barrier("bar", c1, c2, participants=[0, 5])


class TestBarrierReleaseTiming:
    def test_release_is_simultaneous(self):
        """All threads become FREE in the same cycle (the point of a
        barrier): first pass cycles differ by at most the serialization
        of the shared channel (S-1 cycles for S threads)."""
        threads = 4
        items = [[f"T{t}"] for t in range(threads)]
        sim, _src, sink, bar, mon = make_barrier_system(
            FullMEB, items, threads=threads,
            src_patterns=[None, lambda c: c >= 3, lambda c: c >= 6,
                          lambda c: c >= 9],
        )
        sim.run(until=lambda s: sink.count == threads, max_cycles=80)
        first = min(c for c, _t, _d in sink.received)
        last = max(c for c, _t, _d in sink.received)
        assert last - first <= threads - 1
