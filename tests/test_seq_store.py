"""SeqStore / compiled tick-phase behaviour.

Covers what the engine differential suite cannot see from traces alone:

* which components land in the SeqStore and how force-disabling
  ``compile_seq`` (``REPRO_SIM_SEQ=0`` / ``Simulator(compile_seq=False)``)
  falls back to the legacy per-cycle dispatch;
* ``Simulator.reset()`` — plans and slot-backed state rebuild to a
  clean power-on state, traces from a reset sim match a fresh one;
* ``Simulator.rebuild()`` — re-homing sequential slots into a fresh
  SeqStore preserves live state mid-run (the collaborator-swap path);
* ``invalidate()`` re-arming delta-skipped plans;
* settle+tick fusion: batched quiescent cycles are cycle-identical to
  the per-cycle engines, fusion actually engages (settle is not
  re-entered), and observers/legacy components block it.
"""

from __future__ import annotations

import pytest

from repro.core import FullMEB, MTChannel, MTSink, MTSource, ReducedMEB
from repro.core.arbiter import FixedPriorityArbiter
from repro.kernel import Simulator, build
from repro.kernel.values import same_value

from tests.conftest import make_mt_pipeline


@pytest.fixture(autouse=True)
def _seq_enabled(monkeypatch):
    """These tests exercise the seq machinery; pin it on regardless of
    any ambient REPRO_SIM_SEQ (the differential suite covers off)."""
    monkeypatch.setenv("REPRO_SIM_SEQ", "1")


def drain_run(sim, cycles):
    """Step *cycles* cycles collecting a full-signal trace."""
    signals = sim.signals
    rows = []
    for _ in range(cycles):
        sim.step()
        rows.append([sig.value for sig in signals])
    return rows


def assert_rows_equal(rows_a, rows_b):
    assert len(rows_a) == len(rows_b)
    for ca, cb in zip(rows_a, rows_b):
        for va, vb in zip(ca, cb):
            assert same_value(va, vb)


class TestPlanWiring:
    def test_stock_pipeline_is_fully_planned(self):
        items = [list(range(4)) for _ in range(3)]
        sim, src, snk, mebs, mons = make_mt_pipeline(
            FullMEB, threads=3, items=items, engine="compiled",
        )
        seq = sim.seq
        assert seq is not None
        planned = {plan.component for plan in seq.plans}
        assert src in planned and snk in planned
        assert all(meb in planned for meb in mebs)
        assert all(mon in planned for mon in mons)
        # The whole tick runs through plans: fusion is structurally
        # possible for this network.
        assert sim._seq_covers_ticks

    def test_state_rehomed_into_seq_store(self):
        items = [list(range(4)) for _ in range(3)]
        sim, _src, _snk, mebs, _mons = make_mt_pipeline(
            FullMEB, threads=3, items=items, engine="compiled",
        )
        seq = sim.seq
        for meb in mebs:
            assert meb._sstore is seq.values
        sim.run(cycles=3)
        # The component accessors and the raw seq slots are one storage.
        meb = mebs[0]
        assert meb._queues == seq.values[meb._sq:meb._sq + meb.threads]

    def test_seq_disabled_by_flag_and_env(self, monkeypatch):
        items = [list(range(3)) for _ in range(2)]

        def make(**kw):
            sim = Simulator(engine="compiled", **kw)
            chans = [MTChannel(f"c{i}", threads=2) for i in range(2)]
            src = MTSource("src", chans[0], items=items)
            meb = FullMEB("meb", chans[0], chans[1])
            snk = MTSink("snk", chans[1])
            for c in (*chans, src, meb, snk):
                sim.add(c)
            sim.reset()
            return sim

        assert make().seq is not None
        assert make(compile_seq=False).seq is None
        monkeypatch.setenv("REPRO_SIM_SEQ", "0")
        assert make().seq is None
        monkeypatch.setenv("REPRO_SIM_SEQ", "1")
        assert make().seq is not None

    def test_other_engines_have_no_seq(self):
        items = [list(range(3)) for _ in range(2)]
        for engine in ("naive", "event"):
            sim, *_ = make_mt_pipeline(
                FullMEB, threads=2, items=items, engine=engine,
            )
            assert sim.seq is None


class TestResetAndRebuild:
    @pytest.mark.parametrize("meb_cls", [FullMEB, ReducedMEB])
    def test_reset_matches_fresh_simulator(self, meb_cls):
        items = [list(range(t, t + 6)) for t in range(3)]

        def make():
            return make_mt_pipeline(
                meb_cls, threads=3, items=items, n_stages=2,
                engine="compiled",
            )

        sim_a, *_ = make()
        rows_fresh = drain_run(sim_a, 25)
        sim_b, src_b, snk_b, _mebs, mons_b = make()
        drain_run(sim_b, 11)  # advance into the middle of the stream
        sim_b.reset()
        assert sim_b.cycle == 0
        assert snk_b.count == 0 and mons_b[0].cycles_observed == 0
        rows_reset = drain_run(sim_b, 25)
        assert_rows_equal(rows_fresh, rows_reset)

    @pytest.mark.parametrize("meb_cls", [FullMEB, ReducedMEB])
    def test_rebuild_preserves_state_mid_run(self, meb_cls):
        """Re-homing sequential slots must preserve the live trace."""
        items = [list(range(t, t + 8)) for t in range(3)]

        def make():
            return make_mt_pipeline(
                meb_cls, threads=3, items=items, n_stages=2,
                engine="compiled",
            )

        sim_a, _sa, snk_a, _ma, _na = make()
        rows_straight = drain_run(sim_a, 30)
        sim_b, _sb, snk_b, mebs_b, _nb = make()
        rows_b = drain_run(sim_b, 13)
        occ_before = [
            [meb.occupancy(t) for t in range(meb.threads)] for meb in mebs_b
        ]
        sim_b.rebuild()  # fresh SeqStore; state re-homed, not reset
        occ_after = [
            [meb.occupancy(t) for t in range(meb.threads)] for meb in mebs_b
        ]
        assert occ_before == occ_after
        for meb in mebs_b:
            assert meb._sstore is sim_b.seq.values
        rows_b += drain_run(sim_b, 17)
        assert_rows_equal(rows_straight, rows_b)
        assert snk_a.received == snk_b.received

    def test_collaborator_swap_takes_effect_after_rebuild(self):
        items = [list(range(6)) for _ in range(3)]

        def make(swap_at):
            sim, src, snk, mebs, _mons = make_mt_pipeline(
                FullMEB, threads=3, items=items, n_stages=1,
                engine="compiled",
            )
            rows = drain_run(sim, swap_at)
            mebs[0].arbiter = FixedPriorityArbiter(3)
            sim.rebuild()
            rows += drain_run(sim, 30 - swap_at)
            return rows, snk.received

        # The swap point is mid-stream; both sims must agree because the
        # rebuild recompiles every closure against the new arbiter.
        rows_a, recv_a = make(swap_at=7)
        rows_b, recv_b = make(swap_at=7)
        assert_rows_equal(rows_a, rows_b)
        assert recv_a == recv_b


class TestInvalidation:
    def test_push_rearms_skipped_plans(self):
        items = [list(range(3)) for _ in range(2)]
        sim, src, snk, _mebs, _mons = make_mt_pipeline(
            FullMEB, threads=2, items=items, engine="compiled",
        )
        sim.run(cycles=40)
        assert src.exhausted
        drained = snk.count
        # Everything is delta-skipped now; the out-of-band push must
        # re-arm both the settle engine and the tick plan.
        src.push(0, 99)
        sim.run(cycles=10)
        assert snk.count == drained + 1
        assert snk.values_for(0)[-1] == 99

    def test_direct_state_poke_rearms_plan(self):
        """Slot-backed state is part of the delta snapshot, so external
        corruption re-runs the plan's capture/commit without an explicit
        invalidate() — the post-commit invariant checks must fire, as
        they did when capture ran unconditionally every cycle."""
        items = [[1, 2], []]
        sim, _src, _snk, mebs, _mons = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, engine="compiled",
        )
        sim.run(cycles=30)  # fully drained and delta-skipped
        # Corrupt a drained MEB: owner set without any FULL thread.
        mebs[-1]._shared_owner = 1
        from repro.kernel import SimulationError

        with pytest.raises(SimulationError):
            sim.run(cycles=5)

    def test_state_poke_plus_invalidate_reschedules_comb(self):
        """Functional pokes additionally need invalidate(), exactly as
        under the legacy engines (comb outputs derive from state)."""
        items = [[1, 2], []]
        sim, _src, snk, mebs, _mons = make_mt_pipeline(
            FullMEB, threads=2, items=items, engine="compiled",
        )
        sim.run(cycles=30)
        before = snk.count
        meb = mebs[-1]
        meb._queues = [[123], []]
        meb.invalidate()
        sim.run(cycles=10)
        assert snk.count == before + 1
        assert snk.values_for(0)[-1] == 123


class TestFusion:
    def make_bursty(self, engine):
        sim, src, snk, mebs, mons = make_mt_pipeline(
            FullMEB, threads=3, items=[[] for _ in range(3)],
            n_stages=2, engine=engine,
        )
        return sim, src, snk, mons

    def run_bursts(self, sim, src, gap=200, bursts=3):
        for b in range(bursts):
            for t in range(3):
                src.push(t, (b, t))
            sim.run(cycles=gap)

    def test_fused_run_matches_event_engine(self):
        results = {}
        for engine in ("event", "compiled"):
            sim, src, snk, mons = self.make_bursty(engine)
            self.run_bursts(sim, src)
            results[engine] = (
                sim.cycle,
                snk.received,
                [m.activity for m in mons],
                [m.transfers for m in mons],
                [m.cycles_observed for m in mons],
            )
        assert results["event"] == results["compiled"]

    def test_fusion_actually_batches(self):
        sim, src, snk, _mons = self.make_bursty("compiled")
        settles = []
        engine = sim._engine
        orig = engine.settle
        engine.settle = lambda cycle: settles.append(cycle) or orig(cycle)
        self.run_bursts(sim, src, gap=500, bursts=2)
        assert sim.cycle == 1000
        # The quiescent tails are batched: settle runs only while the
        # bursts drain, orders of magnitude fewer times than cycles.
        assert len(settles) < 200

    def test_observer_blocks_fusion(self):
        sim, src, snk, _mons = self.make_bursty("compiled")
        seen = []
        sim.add_observer(lambda s: seen.append(s.cycle))
        self.run_bursts(sim, src, gap=100, bursts=1)
        # Per-cycle observation implies per-cycle stepping.
        assert seen == list(range(100))

    def test_until_runs_never_fuse(self):
        sim, src, snk, _mons = self.make_bursty("compiled")
        for t in range(3):
            src.push(t, (0, t))
        executed = sim.run(until=lambda s: snk.count == 3, max_cycles=500)
        assert snk.count == 3
        assert executed < 500
