"""Tests for automatic elasticization transforms."""

import pytest

from repro.netlist import DataflowGraph, elaborate, validate
from repro.netlist.transform import (
    break_cycles,
    elasticize,
    insert_edge_buffer,
    pipeline_ops,
)
from repro.netlist.graph import NodeKind


def combinational_chain():
    """source -> op -> op -> op -> sink with no buffers at all."""
    g = DataflowGraph("chain")
    g.source("s", items=[1, 2, 3])
    g.op("f1", fn=lambda d: d + 1)
    g.op("f2", fn=lambda d: d * 2)
    g.op("f3", fn=lambda d: d - 3)
    g.sink("k")
    g.chain("s", "f1", "f2", "f3", "k")
    return g


def bufferless_loop():
    g = DataflowGraph("loop")
    # List-of-streams form: one stream holding the single tuple token
    # (a bare [(0, 4)] would be read as a per-thread stream of ints).
    g.source("s", items=[[(0, 4)]])
    g.merge("m")
    g.op("inc", fn=lambda d: (d[0] + 1, d[1]))
    g.branch("br", selector=lambda d: 1 if d[0] >= d[1] else 0)
    g.sink("k")
    g.connect("s", "m", dst_port=0)
    g.connect("m", "inc")
    g.connect("inc", "br")
    g.connect("br", "m", src_port=0, dst_port=1)
    g.connect("br", "k", src_port=1)
    return g


class TestInsertEdgeBuffer:
    def test_splits_edge(self):
        g = combinational_chain()
        edge = g.out_edges("f1")[0]
        name = insert_edge_buffer(g, edge)
        assert g.nodes[name].kind is NodeKind.BUFFER
        assert g.successors("f1") == [name]
        assert g.successors(name) == ["f2"]

    def test_preserves_width_and_ports(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.sink("k")
        edge = g.connect("s", "k", width=64)
        name = insert_edge_buffer(g, edge)
        assert all(e.width == 64 for e in g.out_edges(name) + g.in_edges(name))

    def test_custom_name(self):
        g = combinational_chain()
        edge = g.out_edges("f1")[0]
        assert insert_edge_buffer(g, edge, name="stage1") == "stage1"

    def test_unknown_edge_rejected(self):
        g = combinational_chain()
        other = DataflowGraph("other")
        other.source("s", items=[1])
        other.sink("k")
        edge = other.connect("s", "k")
        with pytest.raises(ValueError):
            insert_edge_buffer(g, edge)

    def test_fresh_names_do_not_collide(self):
        g = combinational_chain()
        n1 = insert_edge_buffer(g, g.out_edges("f1")[0])
        n2 = insert_edge_buffer(g, g.out_edges("f2")[0])
        assert n1 != n2


class TestPipelineOps:
    def test_buffer_after_every_op(self):
        g = pipeline_ops(combinational_chain())
        for op_name in ("f1", "f2", "f3"):
            succ = g.successors(op_name)
            assert len(succ) == 1
            assert g.nodes[succ[0]].kind is NodeKind.BUFFER

    def test_already_buffered_edges_untouched(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.op("f", fn=lambda d: d)
        g.buffer("b")
        g.sink("k")
        g.chain("s", "f", "b", "k")
        before = len(g.nodes)
        pipeline_ops(g)
        assert len(g.nodes) == before

    def test_pipelined_chain_runs_and_is_correct(self):
        g = pipeline_ops(combinational_chain())
        validate(g)
        elab = elaborate(g, threads=1)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 3, max_cycles=60)
        assert snk.values() == [(1 + 1) * 2 - 3, (2 + 1) * 2 - 3,
                                (3 + 1) * 2 - 3]

    def test_pipelining_increases_depth_not_order(self):
        g = pipeline_ops(combinational_chain())
        elab = elaborate(g, threads=1)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 3, max_cycles=60)
        arrivals = snk.arrival_cycles()
        # 3 buffer stages => first arrival at cycle 3, then back to back.
        assert arrivals[0] == 3
        assert arrivals == [3, 4, 5]


class TestBreakCycles:
    def test_loop_becomes_legal(self):
        g = bufferless_loop()
        from repro.netlist import GraphValidationError

        with pytest.raises(GraphValidationError):
            validate(g)
        break_cycles(g)
        validate(g)  # no error now

    def test_fixed_loop_runs_correctly(self):
        g = break_cycles(bufferless_loop())
        elab = elaborate(g, threads=1)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 1, max_cycles=200)
        assert snk.values() == [(4, 4)]

    def test_acyclic_graph_untouched(self):
        g = combinational_chain()
        before = len(g.nodes)
        break_cycles(g)
        assert len(g.nodes) == before


class TestElasticize:
    def test_full_transform_on_loop(self):
        g = elasticize(bufferless_loop())
        validate(g)
        elab = elaborate(g, threads=1)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 1, max_cycles=200)
        assert snk.values() == [(4, 4)]

    def test_multithreaded_elasticized_graph(self):
        g = DataflowGraph("mt")
        g.source("s", items=[[1, 2], [5]])
        g.op("sq", fn=lambda d: d * d)
        g.sink("k")
        g.chain("s", "sq", "k")
        elasticize(g)
        for meb in ("full", "reduced"):
            elab = elaborate(g, threads=2, meb=meb)
            snk = elab.sink("k")
            elab.run(until=lambda s: snk.count == 3, max_cycles=60)
            assert snk.values_for(0) == [1, 4]
            assert snk.values_for(1) == [25]
