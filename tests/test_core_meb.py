"""Tests for the full and reduced multithreaded elastic buffers (§III/IV-A).

These are the paper's core claims at unit granularity: per-thread FIFO
order, storage capacities (2S vs S+1), the EMPTY/HALF/FULL control, the
single-FULL-thread invariant of the reduced MEB, and the throughput
behaviours of §III-A.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EMPTY, FULL, HALF, FullMEB, GrantPolicy, ReducedMEB
from repro.kernel import ProtocolError

from tests.conftest import MEB_CLASSES, make_mt_pipeline


@pytest.mark.parametrize("meb_cls", MEB_CLASSES)
class TestMEBBasics:
    def test_single_thread_items_in_order(self, meb_cls):
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            meb_cls, threads=3, items=[[1, 2, 3, 4], [], []], n_stages=1
        )
        sim.run(until=lambda s: sink.count == 4, max_cycles=50)
        assert sink.values_for(0) == [1, 2, 3, 4]

    def test_per_thread_fifo_order(self, meb_cls):
        items = [[f"A{i}" for i in range(5)], [f"B{i}" for i in range(5)]]
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            meb_cls, threads=2, items=items, n_stages=2
        )
        sim.run(until=lambda s: sink.count == 10, max_cycles=100)
        assert sink.values_for(0) == items[0]
        assert sink.values_for(1) == items[1]

    def test_initial_state_all_empty(self, meb_cls):
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            meb_cls, threads=3, items=[[], [], []], n_stages=1
        )
        for t in range(3):
            assert mebs[0].thread_state(t) == EMPTY
            assert mebs[0].occupancy(t) == 0

    def test_lone_thread_full_throughput(self, meb_cls):
        """Paper §III-A: M=1 and nothing blocked => 100% throughput."""
        items = [[i for i in range(20)], [], [], []]
        sim, _src, sink, _mebs, mons = make_mt_pipeline(
            meb_cls, threads=4, items=items, n_stages=2
        )
        sim.run(until=lambda s: sink.count == 20, max_cycles=100)
        arrivals = sink.cycles_for(0)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == 1 for g in gaps), f"bubbles in lone-thread flow: {gaps}"

    @pytest.mark.parametrize("threads_active", [2, 3, 4])
    def test_uniform_utilization_throughput_1_over_m(self, meb_cls,
                                                     threads_active):
        """Paper §III-A: M active threads each get 1/M of the channel."""
        n_items = 24
        items = [
            list(range(n_items)) if t < threads_active else []
            for t in range(4)
        ]
        sim, _src, sink, _mebs, mons = make_mt_pipeline(
            meb_cls, threads=4, items=items, n_stages=2
        )
        total = n_items * threads_active
        sim.run(until=lambda s: sink.count == total, max_cycles=500)
        out_mon = mons[-1]
        # Steady-state window: skip warmup and drain tails.
        window = (8, 8 + n_items)
        for t in range(threads_active):
            tp = out_mon.throughput_window(*window, thread=t)
            assert tp == pytest.approx(1.0 / threads_active, abs=0.15), (
                f"thread {t} got {tp}, expected ~{1.0 / threads_active}"
            )

    def test_channel_fully_utilized_with_multiple_threads(self, meb_cls):
        items = [list(range(30)), list(range(30))]
        sim, _src, sink, _mebs, mons = make_mt_pipeline(
            meb_cls, threads=2, items=items, n_stages=2
        )
        sim.run(until=lambda s: sink.count == 60, max_cycles=200)
        # In steady state the channel transfers every cycle.
        assert mons[-1].throughput_window(5, 55) == pytest.approx(1.0)

    def test_blocked_thread_does_not_block_others(self, meb_cls):
        """Thread 1's sink never accepts; thread 0 must still flow."""
        items = [list(range(10)), list(range(10))]
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            meb_cls, threads=2, items=items, n_stages=2,
            sink_patterns=[None, lambda c: False],
        )
        sim.run(until=lambda s: sink.count_for(0) == 10, max_cycles=200)
        assert sink.values_for(0) == list(range(10))
        assert sink.count_for(1) == 0

    def test_protocol_one_hot_enforced(self, meb_cls):
        """Monitors reject channels with more than one asserted valid."""
        from repro.core import MTChannel, MTMonitor
        from repro.kernel import Component, build

        class BadProducer(Component):
            def __init__(self, name, ch):
                super().__init__(name)
                self.ch = ch
                ch.connect_producer(self)

            def combinational(self):
                for sig in self.ch.valid:
                    sig.set(True)
                self.ch.data.set(1)

        class DummyConsumer(Component):
            def __init__(self, name, ch):
                super().__init__(name)
                self.ch = ch
                ch.connect_consumer(self)

            def combinational(self):
                for sig in self.ch.ready:
                    sig.set(True)

        ch = MTChannel("ch", threads=2)
        bad = BadProducer("bad", ch)
        cons = DummyConsumer("cons", ch)
        mon = MTMonitor("mon", ch)
        sim = build(ch, bad, cons, mon)
        with pytest.raises(ProtocolError):
            sim.run(cycles=1)


class TestFullMEBStorage:
    def test_capacity_two_per_thread(self):
        items = [list(range(10)), list(range(10)), list(range(10))]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            FullMEB, threads=3, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 3,
        )
        sim.run(cycles=30)
        for t in range(3):
            assert mebs[0].occupancy(t) == 2
            assert mebs[0].thread_state(t) == FULL
        assert mebs[0].total_occupancy() == 6
        assert mebs[0].total_slots == 6

    def test_contents_fifo(self):
        items = [[10, 11, 12], []]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            FullMEB, threads=2, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 2,
        )
        sim.run(cycles=10)
        assert mebs[0].contents(0) == [10, 11]


class TestReducedMEBStorage:
    def test_total_capacity_s_plus_one(self):
        """With everything blocked, a reduced MEB holds exactly S+1 items."""
        items = [list(range(10)) for _ in range(3)]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=3, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 3,
        )
        sim.run(cycles=40)
        assert mebs[0].total_occupancy() == 4  # S + 1 = 4
        assert mebs[0].total_slots == 4

    def test_only_one_thread_full(self):
        items = [list(range(10)) for _ in range(3)]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=3, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 3,
        )
        sim.run(cycles=40)
        fulls = [t for t in range(3) if mebs[0].thread_state(t) == FULL]
        halves = [t for t in range(3) if mebs[0].thread_state(t) == HALF]
        assert len(fulls) == 1
        assert len(halves) == 2
        assert mebs[0].shared_owner == fulls[0]

    def test_half_threads_not_ready_while_shared_occupied(self):
        items = [list(range(10)) for _ in range(2)]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 2,
        )
        sim.run(cycles=20)
        sim.settle()
        meb = mebs[0]
        assert meb.shared_full
        for t in range(2):
            if meb.thread_state(t) == HALF:
                assert meb.up.ready[t].value is False

    def test_shared_slot_refills_main_on_dequeue(self):
        """FULL thread dequeues: main register refilled from shared slot."""
        items = [[1, 2, 3], []]
        # Sink closed for a while, then open.
        sim, _src, sink, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, n_stages=1,
            sink_patterns=[lambda c: c >= 6, lambda c: c >= 6],
        )
        sim.run(cycles=5)
        meb = mebs[0]
        assert meb.thread_state(0) == FULL
        assert meb.contents(0) == [1, 2]
        sim.run(until=lambda s: sink.count == 3, max_cycles=40)
        assert sink.values_for(0) == [1, 2, 3]

    def test_empty_thread_always_ready(self):
        items = [list(range(4)), []]
        sim, _src, _snk, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, n_stages=1,
            sink_patterns=[lambda c: False] * 2,
        )
        sim.run(cycles=10)
        sim.settle()
        meb = mebs[0]
        assert meb.thread_state(1) == EMPTY
        assert meb.up.ready[1].value is True

    def test_simultaneous_enq_deq_in_half_state(self):
        """A HALF thread transferring out can take a new word the same
        cycle (the refill path) — this is what sustains 100% throughput
        for a lone thread."""
        items = [list(range(8)), []]
        sim, _src, sink, mebs, _m = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, n_stages=1
        )
        sim.run(until=lambda s: sink.count == 8, max_cycles=50)
        arrivals = sink.cycles_for(0)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == 1 for g in gaps)


@pytest.mark.parametrize("policy", list(GrantPolicy))
def test_policies_all_work_on_linear_pipeline(policy):
    items = [list(range(6)), list(range(6))]
    sim, _src, sink, _mebs, _m = make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, policy=policy
    )
    sim.run(until=lambda s: sink.count == 12, max_cycles=200)
    assert sink.values_for(0) == list(range(6))
    assert sink.values_for(1) == list(range(6))


@settings(max_examples=40, deadline=None)
@given(
    streams=st.lists(
        st.lists(st.integers(0, 999), min_size=0, max_size=10),
        min_size=2,
        max_size=4,
    ),
    sink_bits=st.lists(st.booleans(), min_size=1, max_size=8),
)
def test_meb_token_conservation_property(streams, sink_bits):
    """Property: both MEB kinds deliver every thread's stream exactly,
    in order, under arbitrary per-thread sink stalling."""
    threads = len(streams)
    patterns = [sink_bits + [True]] * threads
    for meb_cls in MEB_CLASSES:
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            meb_cls, threads=threads, items=streams, n_stages=2,
            sink_patterns=patterns,
        )
        total = sum(len(s) for s in streams)
        sim.run(cycles=total * (len(sink_bits) + 2) * threads + 40)
        for t, stream in enumerate(streams):
            assert sink.values_for(t) == stream, (
                f"{meb_cls.__name__} thread {t}"
            )


@settings(max_examples=30, deadline=None)
@given(
    streams=st.lists(
        st.lists(st.integers(0, 99), min_size=1, max_size=8),
        min_size=2,
        max_size=3,
    ),
)
def test_full_and_reduced_deliver_same_streams(streams):
    """Property: reduced and full MEB pipelines are stream-equivalent
    (same per-thread data sequences; cycle timing may differ only in the
    documented all-but-one-blocked corner)."""
    threads = len(streams)
    per_thread = {}
    for meb_cls in MEB_CLASSES:
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            meb_cls, threads=threads, items=streams, n_stages=3
        )
        total = sum(len(s) for s in streams)
        sim.run(cycles=total * threads + 60)
        per_thread[meb_cls.__name__] = [
            sink.values_for(t) for t in range(threads)
        ]
    assert per_thread["FullMEB"] == per_thread["ReducedMEB"]


class TestLatchStyleMEB:
    """Paper §III: MEBs can be built 'either with regular edge-triggered
    flip flops or level sensitive latches' — same behaviour, different
    storage primitive in the area inventory."""

    def test_latch_style_behaviour_identical(self):
        results = {}
        for latch in (False, True):
            sim, _src, sink, _mebs, _m = make_mt_pipeline(
                FullMEB, threads=2, items=[[1, 2, 3], [4, 5]], n_stages=1
            )
            sim.run(cycles=20)
            results[latch] = (sink.values_for(0), sink.values_for(1))
        assert results[False] == results[True]

    @pytest.mark.parametrize("meb_cls", MEB_CLASSES)
    def test_latch_style_area_accounting(self, meb_cls):
        from repro.core import MTChannel
        from repro.cost import AreaModel

        model = AreaModel()
        ff_meb = meb_cls("ff", MTChannel("a", threads=4),
                         MTChannel("b", threads=4))
        latch_meb = meb_cls("lt", MTChannel("c", threads=4),
                            MTChannel("d", threads=4), latch_style=True)
        ff_area = model.component_area(ff_meb)
        latch_area = model.component_area(latch_meb)
        # Data storage moved from the ff column to the latch column.
        assert latch_area.latch_bits > 0
        assert latch_area.ff_bits < ff_area.ff_bits
        assert ff_area.latch_bits == 0
        # Total LE is unchanged under the default (FPGA) primitive costs.
        assert latch_area.total_le == ff_area.total_le


class TestMTChannelTracing:
    def test_trace_mt_channel_records_handshakes(self):
        from repro.core import trace_mt_channel

        items = [[1, 2], [3]]
        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            FullMEB, threads=2, items=items, n_stages=1
        )
        # Re-attach a recorder on the input channel before running.
        chan = sim.find("ch0")
        rec = trace_mt_channel(sim, chan)
        sim.run(cycles=6)
        assert len(rec) == 6
        assert any(rec.column("ch0.v0"))
        assert any(rec.column("ch0.v1"))
        art = rec.ascii_waveform()
        assert "ch0.data" in art

    def test_trace_vcd_export(self, tmp_path):
        from repro.core import trace_mt_channel

        sim, _src, sink, _mebs, _m = make_mt_pipeline(
            FullMEB, threads=2, items=[[7], []], n_stages=1
        )
        rec = trace_mt_channel(sim, sim.find("ch0"), prefix="in")
        sim.run(cycles=4)
        path = tmp_path / "mt.vcd"
        rec.write_vcd(str(path))
        text = path.read_text()
        assert "in.v0" in text
        assert "$enddefinitions" in text
