"""Fault injection: the monitors and invariants must catch broken
hardware, not just bless working hardware.

Each test builds a deliberately defective component — a buffer that drops
tokens, one that duplicates them, a producer that withdraws a stalled
offer, an arbiter that grants empty threads — and asserts that the
corresponding checker (protocol monitor, conservation report, MEB
invariant) flags it.  If any of these tests fails, the green suite means
nothing.
"""

import pytest

from repro.analysis import check_token_conservation
from repro.core import FullMEB, MTChannel, MTMonitor, MTSink, MTSource, ReducedMEB
from repro.elastic import ChannelMonitor, ElasticBuffer, ElasticChannel, Sink, Source
from repro.kernel import ProtocolError, SimulationError, build
from repro.kernel.values import X


class DroppingMEB(FullMEB):
    """Silently discards every third accepted item."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._accept_count = 0

    def capture(self):
        enq = self._input_thread()
        if enq is not None:
            self._accept_count += 1
            if self._accept_count % 3 == 0:
                # Pretend to accept but drop: run the normal capture with
                # the input masked out.
                transferred = self._output_transferred()
                queues = [list(q) for q in self._queues]
                if transferred:
                    queues[self._grant].pop(0)
                self._next_queues = queues
                self.arbiter.note(self._grant, transferred)
                return
        super().capture()


class DuplicatingMEB(FullMEB):
    """Enqueues every item twice."""

    def capture(self):
        super().capture()
        enq = self._input_thread()
        if enq is not None and self._next_queues is not None:
            self._next_queues[enq].append(self.up.data.value)


class FlakyProducer(Source):
    """Withdraws a stalled offer (violates single-thread persistence)."""

    def combinational(self):
        super().combinational()
        if self._cycle % 2 == 1:
            self.channel.valid.set(False)
            self.channel.data.set(X)


class UnstableProducer(Source):
    """Changes data while stalled (violates data stability)."""

    def combinational(self):
        super().combinational()
        if self.channel.valid.value:
            self.channel.data.set((self._item_at(self._index), self._cycle))


def mt_pipeline(meb_cls, items):
    threads = len(items)
    c0 = MTChannel("c0", threads=threads)
    c1 = MTChannel("c1", threads=threads)
    src = MTSource("src", c0, items=items)
    meb = meb_cls("meb", c0, c1)
    sink = MTSink("snk", c1)
    mon_in = MTMonitor("mon_in", c0)
    mon_out = MTMonitor("mon_out", c1)
    sim = build(c0, c1, src, meb, sink, mon_in, mon_out)
    return sim, sink, mon_in, mon_out


class TestTokenLossDetected:
    def test_dropping_meb_fails_conservation(self):
        sim, _sink, mon_in, mon_out = mt_pipeline(
            DroppingMEB, [[1, 2, 3, 4, 5], [6, 7, 8]]
        )
        sim.run(cycles=40)
        report = check_token_conservation(mon_in, mon_out)
        assert not report.ok
        assert report.missing  # some thread lost tokens

    def test_healthy_meb_passes_conservation(self):
        sim, _sink, mon_in, mon_out = mt_pipeline(
            FullMEB, [[1, 2, 3, 4, 5], [6, 7, 8]]
        )
        sim.run(cycles=40)
        assert check_token_conservation(mon_in, mon_out).ok


class TestDuplicationDetected:
    def test_duplicating_meb_fails_conservation(self):
        sim, _sink, mon_in, mon_out = mt_pipeline(
            DuplicatingMEB, [[1, 2], [3]]
        )
        sim.run(cycles=40)
        report = check_token_conservation(mon_in, mon_out)
        assert not report.ok


class TestProtocolViolationsDetected:
    def test_withdrawn_offer_caught_by_monitor(self):
        ch = ElasticChannel("ch", width=8)
        src = FlakyProducer("src", ch, items=[1, 2, 3])
        # Sink stalls so an offer must persist — and won't.
        sink = Sink("snk", ch, pattern=lambda c: c >= 10)
        mon = ChannelMonitor("mon", ch)
        sim = build(ch, src, sink, mon)
        with pytest.raises(ProtocolError) as exc:
            sim.run(cycles=10)
        assert "withdrawn" in str(exc.value)

    def test_unstable_data_caught_by_monitor(self):
        ch = ElasticChannel("ch", width=8)
        src = UnstableProducer("src", ch, items=[1])
        sink = Sink("snk", ch, pattern=lambda c: c >= 5)
        mon = ChannelMonitor("mon", ch)
        sim = build(ch, src, sink, mon)
        with pytest.raises(ProtocolError) as exc:
            sim.run(cycles=6)
        assert "changed" in str(exc.value)

    def test_checks_can_be_disabled(self):
        ch = ElasticChannel("ch", width=8)
        src = FlakyProducer("src", ch, items=[1, 2])
        sink = Sink("snk", ch, pattern=lambda c: c >= 4)
        mon = ChannelMonitor("mon", ch, check_persistence=False,
                             check_stability=False)
        sim = build(ch, src, sink, mon)
        sim.run(cycles=8)  # no raise


class TestReducedMEBInvariantTrips:
    def test_forced_double_full_detected(self):
        """Corrupt a ReducedMEB's state directly; the post-commit
        invariant check must fire on the next cycle."""
        c0 = MTChannel("c0", threads=2)
        c1 = MTChannel("c1", threads=2)
        src = MTSource("src", c0, items=[[1], [2]])
        meb = ReducedMEB("meb", c0, c1)
        sink = MTSink("snk", c1, patterns=[lambda c: False] * 2)
        sim = build(c0, c1, src, meb, sink)
        sim.run(cycles=5)
        meb._state = ["FULL", "FULL"]
        with pytest.raises(SimulationError) as exc:
            sim.run(cycles=1)
        assert "FULL" in str(exc.value)

    def test_shared_owner_mismatch_detected(self):
        c0 = MTChannel("c0", threads=2)
        c1 = MTChannel("c1", threads=2)
        src = MTSource("src", c0, items=[[1, 2], []])
        meb = ReducedMEB("meb", c0, c1)
        sink = MTSink("snk", c1, patterns=[lambda c: False] * 2)
        sim = build(c0, c1, src, meb, sink)
        sim.run(cycles=5)
        assert meb.shared_owner == 0
        meb._shared_owner = 1  # corrupt: owner without FULL state
        with pytest.raises(SimulationError):
            sim.run(cycles=2)


class TestBufferOverflowDetected:
    def test_forced_overflow_guard(self):
        """The enqueue-into-full guard is unreachable through legal
        handshakes (ready is low when full); drive the signals illegally
        and check the defense-in-depth assertion fires."""
        c0 = ElasticChannel("c0", width=8)
        c1 = ElasticChannel("c1", width=8)
        eb = ElasticBuffer("eb", c0, c1)
        eb._items = [1, 2]          # full
        c0.valid.set(True)          # upstream offers anyway
        c0.ready.set(True)          # and claims acceptance (illegal)
        c0.data.set(3)
        c1.valid.set(True)
        c1.ready.set(False)         # no dequeue to make room
        with pytest.raises(SimulationError):
            eb.capture()
