"""Ensemble lockstep execution: K scenarios through one compiled schedule.

The hard contract under test: per-scenario results of an ensemble batch
are **bit-identical** to serial compiled runs — same cycle counts, same
transfer triples, same metrics — because control never reads payloads
and only control-identical scenarios are batched.  The rest of the file
exercises the failure envelope: lane divergence, poisoned lanes, and
the runner's serial fallback that makes batching a pure optimization.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.kernel import (
    POISON,
    EnsembleDivergence,
    EnsembleSimulator,
    lift_simulator,
)
from repro.kernel.errors import EnsembleUnsupported
from repro.sweep.families import (
    _build_mt_chain,
    _build_mt_ring,
    _drive_to_completion,
    make_mt_chain,
)
from repro.sweep.registry import get_family
from repro.sweep.report import canonical_report
from repro.sweep.runner import (
    execute_ensemble,
    execute_scenario,
    normalize_ensemble,
    plan_units,
    run_campaign,
)
from repro.sweep.spec import from_dict

CHAIN_PARAMS = {"threads": 3, "n_funcs": 2}

#: Seeded-payload campaign covering every ensemble-capable family plus
#: deliberately serial-only blocks (non-seeded, random-kind, fuzz).
SEEDED_CAMPAIGN = {
    "campaign": {"name": "ensemble-test", "seed": 11},
    "scenarios": [
        {
            "family": "mt_chain",
            "params": {"threads": 3, "n_funcs": 2, "n_items": 6},
            "stimulus": {"kind": "uniform", "payload": "seeded",
                         "items_per_thread": 5},
            "grid": {"stimulus.payload_salt": [0, 1, 2, 3]},
        },
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2},
            "stimulus": {"kind": "uniform", "payload": "seeded",
                         "items_per_thread": 4},
            "grid": {"stimulus.payload_salt": [0, 1, 2]},
        },
        {
            "family": "mt_ring",
            "params": {"threads": 2, "n_funcs": 2, "trips": 2},
            "stimulus": {"kind": "active", "payload": "seeded",
                         "items_per_thread": 2},
            "grid": {"stimulus.payload_salt": [0, 1, 2]},
        },
        # Non-seeded payloads: identical data every lane, nothing to
        # batch — must run serially.
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2, "meb": "full"},
            "stimulus": {"kind": "uniform", "items_per_thread": 4},
        },
        # Random stimulus: per-scenario item *counts* differ, so the
        # control schedule differs — never batchable.
        {
            "family": "mt_chain",
            "params": {"threads": 2, "n_funcs": 1, "n_items": 4},
            "stimulus": {"kind": "random", "payload": "seeded",
                         "items_min": 2, "items_max": 6},
            "grid": {"stimulus.payload_salt": [0, 1]},
        },
        # Fuzz rides along serially; its coverage digests must be
        # unaffected by batching elsewhere in the campaign.
        {
            "family": "fuzz",
            "params": {"base": "mt_chain", "threads": 2, "n_funcs": 1},
            "stimulus": {"kind": "fuzz", "rounds": 4, "max_cycles": 4000},
        },
    ],
}


def _chain_lane_items(width: int, threads: int = 3, n: int = 4):
    """Distinct payload schedule per (lane, thread, item)."""
    return [
        [[(j + 1) * 10_000 + t * 100 + k for k in range(n)]
         for t in range(threads)]
        for j in range(width)
    ]


def _run_chain_serial(items):
    handle = _build_mt_chain(CHAIN_PARAMS, None)
    expected = 0
    for t, values in enumerate(items):
        for value in values:
            handle.source.push(t, value)
        expected += len(values)
    _drive_to_completion(handle, expected, {})
    return handle.sim.cycle, list(handle.sink.received)


# ----------------------------------------------------------------------
# kernel layer: lift, lockstep bit-identity, divergence, poison
# ----------------------------------------------------------------------

def test_ensemble_lanes_bit_identical_to_serial():
    width = 4
    lanes = _chain_lane_items(width)
    serial = [_run_chain_serial(items) for items in lanes]
    handle = _build_mt_chain(CHAIN_PARAMS, None)
    lift_simulator(handle.sim, width)
    expected = 0
    for t in range(3):
        for k in range(4):
            handle.source.push(
                t, tuple(lanes[j][t][k] for j in range(width))
            )
            expected += 1
    _drive_to_completion(handle, expected, {})
    for j, (cycles, received) in enumerate(serial):
        assert handle.sim.cycle == cycles
        lane_triples = [(c, t, row[j]) for c, t, row in handle.sink.received]
        assert lane_triples == received


def test_ring_control_divergence_raises():
    handle = _build_mt_ring(
        {"threads": 2, "n_funcs": 1, "trips": 2}, None
    )
    lift_simulator(handle.sim, 2)
    # Ring tokens are (value, trip); lanes disagreeing on the trip count
    # vote differently at the exit branch — control divergence.
    handle.source.push(0, ((5, 0), (6, 1)))
    with pytest.raises(EnsembleDivergence):
        handle.sim.run(cycles=100)


def test_lane_failure_poisons_only_that_lane():
    width = 3
    lanes = _chain_lane_items(width, threads=1, n=2)
    good = [_run_chain_serial(items) for items in (lanes[0], lanes[2])]
    handle = _build_mt_chain({"threads": 1, "n_funcs": 2}, None)
    ctx = lift_simulator(handle.sim, width)
    # Lane 1 carries a payload the chain's arithmetic rejects.
    handle.source.push(0, (lanes[0][0][0], None, lanes[2][0][0]))
    handle.source.push(0, (lanes[0][0][1], None, lanes[2][0][1]))
    _drive_to_completion(handle, 2, {})
    assert set(ctx.failures) == {1}
    assert "TypeError" in ctx.failures[1]
    assert all(row[1] is POISON for _c, _t, row in handle.sink.received)
    for j, lane in zip((0, 2), good):
        cycles, received = lane
        assert handle.sim.cycle == cycles
        lane_triples = [(c, t, row[j]) for c, t, row in handle.sink.received]
        assert lane_triples == received


def test_unsafe_component_refuses_lift():
    from repro.apps.processor.core import Processor

    proc = Processor(threads=2)
    with pytest.raises(EnsembleUnsupported):
        lift_simulator(proc.sim)


def test_ensemble_snapshot_restore_replays():
    sim, source, sink = make_mt_chain(threads=2, n_funcs=1, n_items=0)
    es = EnsembleSimulator(sim)
    es.load(2)
    for t in range(2):
        for k in range(3):
            source.push(t, es.row((100 + t * 10 + k, 200 + t * 10 + k)))
    snap = es.snapshot()
    es.run(cycles=40)
    first = (es.cycle, list(sink.received))
    es.restore(snap)
    es.run(cycles=40)
    assert (es.cycle, list(sink.received)) == first
    assert es.lane_values((r for _c, _t, r in sink.received), 0) == [
        row[0] for _c, _t, row in first[1]
    ]


# ----------------------------------------------------------------------
# runner layer: planning, K=1 parity, fallback
# ----------------------------------------------------------------------

def test_normalize_ensemble_spellings():
    assert normalize_ensemble("auto") > 1
    assert normalize_ensemble(None) == normalize_ensemble("auto")
    assert normalize_ensemble("off") == 0
    assert normalize_ensemble(0) == 0
    assert normalize_ensemble(1) == 0
    assert normalize_ensemble(8) == 8
    assert normalize_ensemble("8") == 8


def test_plan_units_groups_and_caps():
    spec = from_dict(SEEDED_CAMPAIGN)
    units = plan_units(spec.scenarios, "auto")
    sizes = sorted((len(u) for u in units), reverse=True)
    assert sizes[:3] == [4, 3, 3]  # the three seeded grids batch
    assert all(size == 1 for size in sizes[3:])
    # Order is preserved: flattening the units re-yields spec order.
    flat = [s.index for unit in units for s in unit]
    assert sorted(flat) == [s.index for s in spec.scenarios]
    # A lane cap chunks oversized groups.
    capped = plan_units(spec.scenarios, 3)
    assert sorted((len(u) for u in capped), reverse=True)[:4] == [3, 3, 3, 1]
    # ensemble="off" plans everything serial.
    assert all(len(u) == 1 for u in plan_units(spec.scenarios, "off"))


def _strip_volatile(row):
    volatile = ("shard", "duration_s", "design_cache", "cached", "ensemble")
    return {k: v for k, v in row.items() if k not in volatile}


def test_k1_ensemble_matches_plain_compiled():
    spec = from_dict(SEEDED_CAMPAIGN)
    scenario = spec.scenarios[0]
    [row] = execute_ensemble([scenario], None, cache={})
    ref = execute_scenario(scenario, None, cache={})
    assert row["ensemble"] == 1
    assert _strip_volatile(row) == _strip_volatile(ref)


def test_fallback_on_batch_failure(monkeypatch):
    spec = from_dict(SEEDED_CAMPAIGN)
    scenarios = [s for s in spec.scenarios if s.family == "mt_chain"][:3]
    family = get_family("mt_chain")

    def boom(handle, ctx, scens):
        raise EnsembleDivergence("synthetic divergence")

    broken = dataclasses.replace(
        family, ensemble=dataclasses.replace(family.ensemble, run=boom)
    )
    monkeypatch.setattr(
        "repro.sweep.runner.get_family", lambda _name: broken
    )
    rows = execute_ensemble(scenarios, None, cache={})
    refs = [execute_scenario(s, None, cache={}) for s in scenarios]
    for row, ref in zip(rows, refs):
        assert row["ensemble"] == "fallback"
        assert row["status"] == "ok"
        assert row["metrics"] == ref["metrics"]


def test_fallback_when_family_has_no_support(monkeypatch):
    spec = from_dict(SEEDED_CAMPAIGN)
    scenarios = [s for s in spec.scenarios if s.family == "mt_chain"][:2]
    family = get_family("mt_chain")
    stripped = dataclasses.replace(family, ensemble=None)
    monkeypatch.setattr(
        "repro.sweep.runner.get_family", lambda _name: stripped
    )
    rows = execute_ensemble(scenarios, None, cache={})
    assert all(r["ensemble"] == "fallback" for r in rows)
    assert all(r["status"] == "ok" for r in rows)


# ----------------------------------------------------------------------
# campaign layer: batched report == serial report, bit for bit
# ----------------------------------------------------------------------

def _canonical_json(report):
    return json.dumps(canonical_report(report), sort_keys=True, default=str)


def test_campaign_batched_equals_serial_report():
    spec = from_dict(SEEDED_CAMPAIGN)
    batched = run_campaign(spec, workers=1, ensemble="auto")
    serial = run_campaign(spec, workers=1, ensemble="off")
    assert batched["summary"]["failed"] == 0
    assert _canonical_json(batched) == _canonical_json(serial)
    # The batched run really batched (volatile row metadata records K).
    widths = [r.get("ensemble") for r in batched["scenarios"]]
    assert any(isinstance(w, int) and w >= 2 for w in widths)
    # Seeded lanes carry distinct payload digests.
    digests = [
        r["metrics"]["payload_digest"]
        for r in batched["scenarios"]
        if "payload_digest" in r.get("metrics", {})
    ]
    assert len(set(digests)) == len(digests)


def test_campaign_pooled_batched_equals_serial_report():
    spec = from_dict(SEEDED_CAMPAIGN)
    pooled = run_campaign(spec, workers=2, ensemble="auto")
    serial = run_campaign(spec, workers=1, ensemble="off")
    assert _canonical_json(pooled) == _canonical_json(serial)


def test_registry_payload_flags_ensemble_support():
    from repro.sweep.registry import registry_payload

    families = registry_payload()["families"]
    assert families["mt_chain"]["ensemble"] is True
    assert families["mt_pipeline"]["ensemble"] is True
    assert families["mt_ring"]["ensemble"] is True
    assert families["md5"]["ensemble"] is False
    assert families["fuzz"]["ensemble"] is False
