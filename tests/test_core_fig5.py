"""Reproduction of the paper's Fig. 5 scenario as tests (§III-A).

A 2-thread, 2-stage MEB pipeline. Both threads inject continuously;
thread B's consumer stalls for a window, then releases.  The paper's
analysis:

* **Full MEBs** (Fig. 5(a)): while B is blocked everywhere, thread A still
  gets 100% of the channel (each stage has two private A slots, so A can
  overlap dequeue and refill every cycle).
* **Reduced MEBs** (Fig. 5(b)): B's stalled items occupy the shared slots
  of both stages; backpressure reaches the source and "injection for
  thread B stops".  From then on thread A sees effectively one slot per
  stage and gets **50%** throughput — "the only one in which the
  difference between the full and the reduced MEB arises".
* After B releases, both configurations return to 1/2-1/2 sharing, and
  the delivered per-thread streams are identical.
"""

import pytest

from repro.core import FullMEB, ReducedMEB
from repro.elastic import stall_window

from tests.conftest import MEB_CLASSES, make_mt_pipeline

#: B's sink refuses during [STALL_START, STALL_END).
STALL_START, STALL_END = 10, 40
#: Measurement window deep inside the stall, after backpressure has
#: propagated to the source (2 stages + source, a few cycles margin).
MEASURE = (STALL_START + 10, STALL_END - 2)
N_ITEMS = 60


def run_fig5(meb_cls, n_stages=2):
    items = [
        [f"A{i}" for i in range(N_ITEMS)],
        [f"B{i}" for i in range(N_ITEMS)],
    ]
    sim, src, sink, mebs, mons = make_mt_pipeline(
        meb_cls,
        threads=2,
        items=items,
        n_stages=n_stages,
        sink_patterns=[None, stall_window(STALL_START, STALL_END)],
    )
    sim.run(cycles=STALL_END + 2 * N_ITEMS)
    return sim, src, sink, mebs, mons


class TestBeforeStall:
    @pytest.mark.parametrize("meb_cls", MEB_CLASSES)
    def test_uniform_sharing_half_throughput_each(self, meb_cls):
        _sim, _src, _sink, _mebs, mons = run_fig5(meb_cls)
        out = mons[-1]
        warm = (4, STALL_START)
        assert out.throughput_window(*warm, thread=0) == pytest.approx(
            0.5, abs=0.1
        )
        assert out.throughput_window(*warm, thread=1) == pytest.approx(
            0.5, abs=0.1
        )


class TestDuringStall:
    def test_full_meb_keeps_thread_a_at_full_rate(self):
        """Fig. 5(a): full MEBs let A use every cycle while B is blocked."""
        _sim, _src, _sink, _mebs, mons = run_fig5(FullMEB)
        tp_a = mons[-1].throughput_window(*MEASURE, thread=0)
        assert tp_a == pytest.approx(1.0, abs=0.05)

    def test_reduced_meb_halves_thread_a(self):
        """Fig. 5(b): with shared slots held by blocked B, A gets 50%."""
        _sim, _src, _sink, _mebs, mons = run_fig5(ReducedMEB)
        tp_a = mons[-1].throughput_window(*MEASURE, thread=0)
        assert tp_a == pytest.approx(0.5, abs=0.05)

    def test_reduced_meb_b_injection_stops(self):
        """Fig. 5(b): backpressure reaches the input and B stops entering."""
        _sim, _src, _sink, _mebs, mons = run_fig5(ReducedMEB)
        in_mon = mons[0]
        b_in = [
            c for c in in_mon.transfer_cycles(1) if MEASURE[0] <= c < MEASURE[1]
        ]
        assert b_in == []

    def test_reduced_shared_slots_held_by_blocked_thread(self):
        sim, _src, _sink, mebs, _mons = run_fig5(ReducedMEB)
        # Re-run to mid-stall to inspect state.
        sim.reset()
        sim.run(cycles=MEASURE[0])
        for meb in mebs:
            assert meb.shared_full
            assert meb.shared_owner == 1  # thread B owns every shared slot

    def test_full_meb_b_keeps_two_slots_per_stage(self):
        sim, _src, _sink, mebs, _mons = run_fig5(FullMEB)
        sim.reset()
        sim.run(cycles=MEASURE[0])
        for meb in mebs:
            assert meb.occupancy(1) == 2


class TestAfterRelease:
    @pytest.mark.parametrize("meb_cls", MEB_CLASSES)
    def test_b_resumes_and_all_items_delivered(self, meb_cls):
        _sim, _src, sink, _mebs, _mons = run_fig5(meb_cls)
        assert sink.values_for(0) == [f"A{i}" for i in range(N_ITEMS)]
        assert sink.values_for(1) == [f"B{i}" for i in range(N_ITEMS)]

    def test_streams_identical_between_meb_kinds(self):
        outputs = {}
        for meb_cls in MEB_CLASSES:
            _sim, _src, sink, _mebs, _mons = run_fig5(meb_cls)
            outputs[meb_cls.__name__] = (
                sink.values_for(0),
                sink.values_for(1),
            )
        assert outputs["FullMEB"] == outputs["ReducedMEB"]


class TestStallPropagationDepth:
    """The 50% effect needs the stall to reach the source; with a short
    stall the shared slots never all fill and A keeps full rate."""

    def test_short_stall_does_not_halve_a(self):
        items = [[f"A{i}" for i in range(40)], [f"B{i}" for i in range(40)]]
        sim, _src, _sink, _mebs, mons = make_mt_pipeline(
            ReducedMEB, threads=2, items=items, n_stages=2,
            sink_patterns=[None, stall_window(10, 13)],
        )
        sim.run(cycles=120)
        # Average A throughput over the whole run stays near 1/2 (the
        # fair share), far above what a sustained-50%-of-50% would give.
        tp_a = mons[-1].throughput_window(4, 80, thread=0)
        assert tp_a > 0.45

    def test_deeper_pipeline_takes_longer_to_degrade(self):
        """With 4 stages there are more shared slots to fill before the
        effect reaches the source, delaying A's slowdown."""
        n_items = 80
        items = [
            [f"A{i}" for i in range(n_items)],
            [f"B{i}" for i in range(n_items)],
        ]
        first_degraded = {}
        for stages in (2, 4):
            sim, _src, _sink, mebs, mons = make_mt_pipeline(
                ReducedMEB, threads=2, items=items, n_stages=stages,
                sink_patterns=[None, stall_window(10, 70)],
            )
            sim.run(cycles=80)
            # The moment every stage's shared slot belongs to B.
            sim.reset()
            cycle = 0
            while cycle < 70:
                sim.step()
                cycle += 1
                if all(m.shared_owner == 1 for m in mebs):
                    break
            first_degraded[stages] = cycle
        assert first_degraded[4] > first_degraded[2]
