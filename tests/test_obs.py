"""The observability layer: metrics registry, tracer, kernel profiler.

The profiler tests pin its hard contract differentially: a profiled run
must be *bit-identical* to an unprofiled one (same cycles, same sink
contents, same campaign metrics) on every engine, fusion must stay on
while profiling, and a detached simulator must carry zero profiler
residue — it runs the exact code it would have run had the profiler
never existed.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.core import FullMEB
from repro.kernel import Simulator
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    KernelProfiler,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.sweep.families import make_mt_bursty, make_mt_pipeline
from repro.sweep.report import canonical_report
from repro.sweep.runner import run_campaign
from repro.sweep.spec import from_dict

ENGINES = ("naive", "event", "compiled")


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

#: One Prometheus text-format sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def _assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample; every sample's
    metric family is preceded by # HELP and # TYPE lines."""
    assert text.endswith("\n")
    declared = set()
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            declared.add(line.split()[2])
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in declared or base in declared, (
            f"sample {name} has no HELP/TYPE header"
        )


class TestMetrics:
    def test_counter_inc_and_render(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "A test counter.")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        text = reg.render()
        assert "# TYPE repro_test_total counter" in text
        assert "repro_test_total 3.5" in text
        _assert_valid_exposition(text)

    def test_counter_rejects_negative(self):
        c = Counter("repro_neg_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_counter_series(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_rows_total", "Rows.", labelnames=("status",))
        c.inc(status="ok")
        c.inc(status="ok")
        c.inc(status="error")
        text = reg.render()
        assert 'repro_rows_total{status="ok"} 2' in text
        assert 'repro_rows_total{status="error"} 1' in text
        assert c.value(status="ok") == 2
        _assert_valid_exposition(text)

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_esc_total", "x", labelnames=("k",))
        c.inc(k='quote " slash \\ newline \n')
        text = reg.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        _assert_valid_exposition(text)

    def test_gauge_set_inc_dec(self):
        g = Gauge("repro_depth", "x")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat_seconds", "x", buckets=(0.1, 1.0, 10.0)
        )
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.render()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 3' in text
        assert 'repro_lat_seconds_bucket{le="10"} 4' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_lat_seconds_count 5" in text
        assert "repro_lat_seconds_sum 56.05" in text
        assert h.count() == 5
        _assert_valid_exposition(text)

    def test_registry_idempotent_and_type_conflicts(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_same_total", "x")
        assert reg.counter("repro_same_total", "x") is a
        assert reg.get("repro_same_total") is a
        with pytest.raises(ValueError):
            reg.gauge("repro_same_total", "x")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad", "x")
        with pytest.raises(ValueError):
            reg.counter("repro_ok_total", "x", labelnames=("0bad",))

    def test_content_type_constant(self):
        assert MetricsRegistry.CONTENT_TYPE.startswith("text/plain")


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_nesting_and_jsonl(self):
        tracer = Tracer(trace_id="t-1", worker=3)
        with tracer.span("job", campaign="c") as job:
            with tracer.span("unit", parent=job, scenarios=2) as unit:
                with tracer.span("scenario", parent=unit, key="k"):
                    pass
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["scenario", "unit", "job"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["unit"]["parent_id"] == by_name["job"]["span_id"]
        assert by_name["scenario"]["parent_id"] == by_name["unit"]["span_id"]
        for s in spans:
            assert s["trace_id"] == "t-1"
            assert s["attrs"]["worker"] == 3
            assert s["duration_s"] >= 0
        lines = tracer.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "scenario", "unit", "job",
        ]

    def test_span_parent_accepts_id_string(self):
        tracer = Tracer(trace_id="t-2")
        with tracer.span("child", parent="abcd1234abcd1234"):
            pass
        assert tracer.spans()[0]["parent_id"] == "abcd1234abcd1234"

    def test_exception_sets_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        span = tracer.spans()[0]
        assert "RuntimeError" in span["attrs"]["error"]

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", parent=None, k=1) as span:
            span.set(more=2)
        assert tracer.spans() == []


# ----------------------------------------------------------------------
# kernel profiler
# ----------------------------------------------------------------------

def _pipeline(engine):
    items = [list(range(6)) for _ in range(2)]
    return make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, engine=engine,
    )


def _drain(sim, sink, threads=2, n_items=6):
    sim.run(until=lambda s: sink.count == threads * n_items,
            max_cycles=5_000)


class TestKernelProfiler:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_profiled_run_bit_identical(self, engine):
        sim_a, _src, sink_a, _mebs, _mons = _pipeline(engine)
        _drain(sim_a, sink_a)
        sim_b, _src, sink_b, _mebs, _mons = _pipeline(engine)
        with sim_b.profile() as prof:
            _drain(sim_b, sink_b)
        assert sim_b.cycle == sim_a.cycle
        assert sink_b.received == sink_a.received
        report = prof.report()
        assert report["engine"] == engine
        assert report["cycles"]["total"] == sim_b.cycle
        assert report["settle"]["calls"] > 0
        assert report["settle"]["iterations"] >= report["settle"]["calls"]
        assert report["components"], "no component attribution"
        total_calls = sum(c["settle_calls"] for c in report["components"])
        assert total_calls > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_detach_leaves_no_residue(self, engine):
        sim, _src, sink, _mebs, _mons = _pipeline(engine)
        with sim.profile():
            sim.run(cycles=3)
        assert sim.profiler is None
        assert "_tick" not in sim.__dict__
        assert "_fuse_quiescent" not in sim.__dict__
        assert "settle" not in sim._engine.__dict__
        # the simulator still advances and completes after detach
        _drain(sim, sink)
        assert sink.count == 12

    def test_fusion_stays_on_while_profiled(self):
        sim, src, sink, _mebs, _mons = make_mt_bursty(
            FullMEB, threads=2, n_stages=2, engine="compiled",
        )
        with sim.profile() as prof:
            for t in range(2):
                for i in range(4):
                    src.push(t, (t << 8) | i)
            sim.run(cycles=500)
        report = prof.report()
        assert report["cycles"]["fused"] > 0, (
            "settle+tick fusion was disabled by the profiler"
        )
        assert report["cycles"]["fusion_utilization"] > 0.5
        assert report["phases"]["fused"]["calls"] == (
            report["cycles"]["fused_batches"]
        )
        assert sink.count == 8

    def test_constructor_flag_and_detach(self):
        from repro.kernel import Component

        class Counter(Component):
            def __init__(self, name):
                super().__init__(name)
                self.out = self.output("out", width=8, init=0)
                self._value = 0
                self._next = None

            def combinational(self):
                self.out.set(self._value)

            def capture(self):
                self._next = self._value + 1

            def commit(self):
                self._value = self._next

            def reset(self):
                self._value = 0
                self._next = None

        sim = Simulator(profile=True)
        sim.add(Counter("cnt"))
        sim.reset()
        sim.run(cycles=5)
        assert isinstance(sim.profiler, KernelProfiler)
        report = sim.profiler.report()
        assert report["cycles"]["total"] == 5
        detached = sim.detach_profiler()
        assert detached is not None and sim.profiler is None
        sim.run(cycles=2)
        assert sim.cycle == 7

    def test_compiled_regions_attributed(self):
        sim, _src, sink, _mebs, _mons = _pipeline("compiled")
        with sim.profile() as prof:
            _drain(sim, sink)
        report = prof.report()
        assert report["regions"], "compiled engine exposed no regions"
        assert sum(r["settle_calls"] for r in report["regions"]) > 0
        members = [m for r in report["regions"] for m in r["members"]]
        assert len(members) == len(set(members))

    def test_report_top_caps_hot_list(self):
        sim, _src, sink, _mebs, _mons = _pipeline("compiled")
        with sim.profile() as prof:
            _drain(sim, sink)
        full = prof.report()["components"]
        capped = prof.report(top=2)["components"]
        assert len(capped) == 2
        assert capped == full[:2]


# ----------------------------------------------------------------------
# campaign-level parity: profiling must not change any report content
# ----------------------------------------------------------------------

PARITY_CAMPAIGN = {
    "campaign": {"name": "obs-parity", "seed": 17},
    "scenarios": [
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2},
            "grid": {"meb": ["full", "reduced"]},
            "stimulus": {"kind": "uniform", "items_per_thread": 6},
        },
        {
            "family": "mt_chain",
            "params": {"threads": 2, "n_funcs": 2},
            "stimulus": {"kind": "uniform", "items_per_thread": 5},
        },
    ],
}


class TestCampaignParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_profile_on_off_identical_reports(self, engine):
        spec = from_dict(PARITY_CAMPAIGN)
        plain = run_campaign(spec, workers=1, engine=engine)
        profiled = run_campaign(
            from_dict(PARITY_CAMPAIGN), workers=1, engine=engine,
            profile=True,
        )
        assert any("profile" in row for row in profiled["scenarios"])
        assert canonical_report(profiled) == canonical_report(plain)

    def test_profile_parity_across_worker_counts(self):
        plain = run_campaign(from_dict(PARITY_CAMPAIGN), workers=1)
        pooled = run_campaign(
            from_dict(PARITY_CAMPAIGN), workers=2, profile=True,
        )
        assert canonical_report(pooled) == canonical_report(plain)

    def test_profile_report_shape_in_rows(self):
        report = run_campaign(
            from_dict(PARITY_CAMPAIGN), workers=1, profile=True,
        )
        profiled = [r for r in report["scenarios"] if "profile" in r]
        assert profiled
        for row in profiled:
            prof = row["profile"]
            assert {"engine", "cycles", "phases", "settle",
                    "components"} <= set(prof)
