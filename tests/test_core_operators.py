"""Tests for M-Join, M-Fork, M-Branch, M-Merge (paper §IV-B, Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullMEB,
    MBranch,
    MFork,
    MJoin,
    MMerge,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
    ReducedMEB,
)
from repro.kernel import ProtocolError, build

from tests.conftest import MEB_CLASSES


def mt_ch(name, threads=2, width=32):
    return MTChannel(name, threads=threads, width=width)


class TestMJoin:
    def make(self, items_a, items_b, threads=2):
        cha, chb, out = mt_ch("cha", threads), mt_ch("chb", threads), mt_ch("out", threads)
        sa = MTSource("sa", cha, items=items_a)
        sb = MTSource("sb", chb, items=items_b)
        join = MJoin("join", [cha, chb], out)
        sink = MTSink("snk", out)
        sim = build(cha, chb, out, sa, sb, join, sink)
        return sim, sink

    def test_joins_matching_threads(self):
        sim, sink = self.make([[1, 2], [5]], [[10, 20], [50]])
        sim.run(until=lambda s: sink.count == 3, max_cycles=60)
        assert sink.values_for(0) == [(1, 10), (2, 20)]
        assert sink.values_for(1) == [(5, 50)]

    def test_missing_partner_blocks_only_that_thread(self):
        # Thread 1 has data on A but never on B; thread 0 flows normally.
        sim, sink = self.make([[1, 2], [7]], [[10, 20], []])
        sim.run(until=lambda s: sink.count_for(0) == 2, max_cycles=60)
        assert sink.values_for(0) == [(1, 10), (2, 20)]
        assert sink.count_for(1) == 0

    def test_join_through_mebs_converges_on_common_thread(self):
        """The agreement problem (DESIGN.md §5): two MEBs with fallback
        arbitration feeding one M-Join must settle on a common thread and
        drain everything."""
        for meb_cls in MEB_CLASSES:
            cha, chb = mt_ch("cha"), mt_ch("chb")
            ba, bb = mt_ch("ba"), mt_ch("bb")
            out = mt_ch("out")
            sa = MTSource("sa", cha, items=[[1, 2, 3], [4, 5, 6]])
            sb = MTSource("sb", chb, items=[[10, 20, 30], [40, 50, 60]])
            ma = meb_cls("ma", cha, ba)
            mb = meb_cls("mb", chb, bb)
            join = MJoin("join", [ba, bb], out)
            sink = MTSink("snk", out)
            sim = build(cha, chb, ba, bb, out, sa, sb, ma, mb, join, sink)
            sim.run(until=lambda s: sink.count == 6, max_cycles=300)
            assert sink.values_for(0) == [(1, 10), (2, 20), (3, 30)]
            assert sink.values_for(1) == [(4, 40), (5, 50), (6, 60)]

    def test_three_input_join(self):
        chs = [mt_ch(f"c{i}") for i in range(3)]
        out = mt_ch("out")
        srcs = [
            MTSource(f"s{i}", ch, items=[[i * 10 + 1], [i * 10 + 2]])
            for i, ch in enumerate(chs)
        ]
        join = MJoin("join", chs, out)
        sink = MTSink("snk", out)
        sim = build(*chs, out, *srcs, join, sink)
        sim.run(until=lambda s: sink.count == 2, max_cycles=80)
        assert sink.values_for(0) == [(1, 11, 21)]
        assert sink.values_for(1) == [(2, 12, 22)]

    def test_thread_count_mismatch_rejected(self):
        cha = mt_ch("cha", threads=2)
        chb = mt_ch("chb", threads=3)
        out = mt_ch("out", threads=2)
        from repro.kernel import SimulationError

        with pytest.raises(SimulationError):
            MJoin("join", [cha, chb], out)


class TestMFork:
    def test_duplicates_all_threads(self):
        inp = mt_ch("inp")
        outa, outb = mt_ch("oa"), mt_ch("ob")
        src = MTSource("src", inp, items=[[1, 2], [3, 4]])
        fork = MFork("fork", inp, [outa, outb])
        ska = MTSink("ska", outa)
        skb = MTSink("skb", outb)
        sim = build(inp, outa, outb, src, fork, ska, skb)
        sim.run(until=lambda s: ska.count == 4 and skb.count == 4,
                max_cycles=60)
        for sink in (ska, skb):
            assert sink.values_for(0) == [1, 2]
            assert sink.values_for(1) == [3, 4]

    def test_stalled_branch_blocks_that_thread_only(self):
        inp = mt_ch("inp")
        outa, outb = mt_ch("oa"), mt_ch("ob")
        src = MTSource("src", inp, items=[[1, 2], [3, 4]])
        fork = MFork("fork", inp, [outa, outb])
        ska = MTSink("ska", outa)
        # B-side sink refuses thread 1 entirely.
        skb = MTSink("skb", outb, patterns=[None, lambda c: False])
        sim = build(inp, outa, outb, src, fork, ska, skb)
        sim.run(until=lambda s: ska.count_for(0) == 2, max_cycles=60)
        assert ska.values_for(0) == [1, 2]
        assert ska.count_for(1) == 0  # lazy fork: thread 1 fully blocked


class TestMBranch:
    def test_routes_by_condition_per_thread(self):
        inp = mt_ch("inp")
        out_even, out_odd = mt_ch("oe"), mt_ch("oo")
        src = MTSource("src", inp, items=[[2, 3, 4], [5, 6]])
        br = MBranch("br", inp, [out_even, out_odd], selector=lambda d: d % 2)
        ske = MTSink("ske", out_even)
        sko = MTSink("sko", out_odd)
        sim = build(inp, out_even, out_odd, src, br, ske, sko)
        sim.run(until=lambda s: ske.count + sko.count == 5, max_cycles=60)
        assert ske.values_for(0) == [2, 4]
        assert sko.values_for(0) == [3]
        assert ske.values_for(1) == [6]
        assert sko.values_for(1) == [5]

    def test_selector_bounds_checked(self):
        inp = mt_ch("inp")
        outs = [mt_ch("o0"), mt_ch("o1")]
        src = MTSource("src", inp, items=[[9], []])
        br = MBranch("br", inp, outs, selector=lambda d: 5)
        sinks = [MTSink(f"sk{i}", ch) for i, ch in enumerate(outs)]
        sim = build(inp, *outs, src, br, *sinks)
        with pytest.raises(ProtocolError):
            sim.run(cycles=3)

    def test_route_transform(self):
        inp = mt_ch("inp")
        outs = [mt_ch("o0"), mt_ch("o1")]
        src = MTSource("src", inp, items=[[(0, "x")], [(1, "y")]])
        br = MBranch("br", inp, outs, selector=lambda d: d[0],
                     route=lambda d: d[1])
        sinks = [MTSink(f"sk{i}", ch) for i, ch in enumerate(outs)]
        sim = build(inp, *outs, src, br, *sinks)
        sim.run(until=lambda s: sinks[0].count + sinks[1].count == 2,
                max_cycles=40)
        assert sinks[0].values_for(0) == ["x"]
        assert sinks[1].values_for(1) == ["y"]


class TestMMerge:
    def test_merges_exclusive_paths(self):
        cha, chb, out = mt_ch("cha"), mt_ch("chb"), mt_ch("out")
        # Path A carries thread 0 only, path B thread 1 only.
        sa = MTSource("sa", cha, items=[[1, 2, 3], []])
        sb = MTSource("sb", chb, items=[[], [10, 20, 30]])
        mg = MMerge("mg", [cha, chb], out)
        sink = MTSink("snk", out)
        mon = MTMonitor("mon", out)
        sim = build(cha, chb, out, sa, sb, mg, sink, mon)
        sim.run(until=lambda s: sink.count == 6, max_cycles=60)
        assert sink.values_for(0) == [1, 2, 3]
        assert sink.values_for(1) == [10, 20, 30]

    def test_output_stays_one_hot_under_contention(self):
        """Both paths active with different threads: the path arbiter must
        serialize them (the monitor raises if valid is ever multi-hot)."""
        cha, chb, out = mt_ch("cha"), mt_ch("chb"), mt_ch("out")
        sa = MTSource("sa", cha, items=[[i for i in range(10)], []])
        sb = MTSource("sb", chb, items=[[], [100 + i for i in range(10)]])
        mg = MMerge("mg", [cha, chb], out)
        mon = MTMonitor("mon", out)
        sink = MTSink("snk", out)
        sim = build(cha, chb, out, sa, sb, mg, mon, sink)
        sim.run(until=lambda s: sink.count == 20, max_cycles=120)
        assert sink.values_for(0) == list(range(10))
        assert sink.values_for(1) == [100 + i for i in range(10)]

    def test_same_thread_on_two_paths_rejected(self):
        cha, chb, out = mt_ch("cha"), mt_ch("chb"), mt_ch("out")
        sa = MTSource("sa", cha, items=[[1], []])
        sb = MTSource("sb", chb, items=[[2], []])
        mg = MMerge("mg", [cha, chb], out)
        sink = MTSink("snk", out)
        sim = build(cha, chb, out, sa, sb, mg, sink)
        with pytest.raises(ProtocolError):
            sim.run(cycles=3)

    def test_path_fairness(self):
        """Round-robin between contending paths: both make progress."""
        cha, chb, out = mt_ch("cha"), mt_ch("chb"), mt_ch("out")
        sa = MTSource("sa", cha, items=[[i for i in range(20)], []])
        sb = MTSource("sb", chb, items=[[], [i for i in range(20)]])
        mg = MMerge("mg", [cha, chb], out)
        mon = MTMonitor("mon", out)
        sink = MTSink("snk", out)
        sim = build(cha, chb, out, sa, sb, mg, mon, sink)
        sim.run(cycles=20)
        assert sink.count_for(0) >= 5
        assert sink.count_for(1) >= 5


class TestBranchMergeRoundTrip:
    @pytest.mark.parametrize("meb_cls", MEB_CLASSES)
    def test_if_then_else_with_buffered_arms(self, meb_cls):
        threads = 2
        inp = mt_ch("inp", threads)
        t0, t1 = mt_ch("t0", threads), mt_ch("t1", threads)
        b0, b1 = mt_ch("b0", threads), mt_ch("b1", threads)
        out = mt_ch("out", threads)
        items = [[3, 8, 1], [6, 7, 2]]
        src = MTSource("src", inp, items=items)
        br = MBranch("br", inp, [t0, t1], selector=lambda d: d % 2)
        m0 = meb_cls("m0", t0, b0)
        m1 = meb_cls("m1", t1, b1)
        mg = MMerge("mg", [b0, b1], out)
        mon = MTMonitor("mon", out)
        sink = MTSink("snk", out)
        sim = build(inp, t0, t1, b0, b1, out, src, br, m0, m1, mg, mon, sink)
        sim.run(until=lambda s: sink.count == 6, max_cycles=200)
        for t in range(threads):
            evens = [v for v in sink.values_for(t) if v % 2 == 0]
            odds = [v for v in sink.values_for(t) if v % 2 == 1]
            assert evens == [v for v in items[t] if v % 2 == 0]
            assert odds == [v for v in items[t] if v % 2 == 1]


@settings(max_examples=25, deadline=None)
@given(
    a0=st.lists(st.integers(0, 99), min_size=0, max_size=6),
    a1=st.lists(st.integers(0, 99), min_size=0, max_size=6),
)
def test_fork_join_diamond_property(a0, a1):
    """Property: fork -> (MEB, MEB) -> join reconstructs each thread's
    stream zipped with itself, for random per-thread streams."""
    inp = mt_ch("inp")
    fa, fb = mt_ch("fa"), mt_ch("fb")
    ba, bb = mt_ch("ba"), mt_ch("bb")
    out = mt_ch("out")
    src = MTSource("src", inp, items=[a0, a1])
    fork = MFork("fork", inp, [fa, fb])
    ma = FullMEB("ma", fa, ba)
    mb = ReducedMEB("mb", fb, bb)
    join = MJoin("join", [ba, bb], out)
    sink = MTSink("snk", out)
    sim = build(inp, fa, fb, ba, bb, out, src, fork, ma, mb, join, sink)
    total = len(a0) + len(a1)
    sim.run(cycles=total * 6 + 40)
    assert sink.values_for(0) == [(v, v) for v in a0]
    assert sink.values_for(1) == [(v, v) for v in a1]
