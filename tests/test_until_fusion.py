"""``run(until=...)`` fusion under the declared-watch contract.

A :class:`WatchedPredicate` promises it is a pure function of its
declared watch signals and transfer-derived component state — never of
``sim.cycle`` — which lets the engine batch fully quiescent stretches
instead of evaluating the predicate every idle cycle.  The tests pin
the contract differentially: fused and unfused runs must agree on the
final cycle and every observed transfer, including the deadlock
diagnosis path, and observers must disable fusion (structured
:class:`FusionBlockedError` when the caller demanded it).
"""

from __future__ import annotations

import pytest

from repro.kernel import FusionBlockedError, WatchedPredicate
from repro.kernel.errors import SimulationError
from repro.sweep.families import make_mt_chain


def _loaded_chain(engine=None):
    sim, source, sink = make_mt_chain(
        threads=2, n_funcs=2, n_items=0, engine=engine
    )
    for t in range(2):
        for k in range(5):
            source.push(t, t * 100 + k)
    return sim, source, sink


def _watched(sink, target):
    return WatchedPredicate(
        lambda _s: sink.count >= target,
        watches=(*sink.channel.valid, *sink.channel.ready),
    )


def test_fused_matches_unfused_completion():
    sim_f, _src, sink_f = _loaded_chain()
    sim_u, _src, sink_u = _loaded_chain()
    sim_f.run(until=_watched(sink_f, 10), max_cycles=5000)
    # A plain callable gives no purity declaration, so no fusion.
    sim_u.run(until=lambda _s: sink_u.count >= 10, max_cycles=5000)
    assert sim_f.cycle == sim_u.cycle
    assert list(sink_f.received) == list(sink_u.received)


def test_fused_deadlock_diagnosis_is_cycle_identical():
    # Target is unreachable: 10 items pushed, 11 awaited.  The fused
    # run must reach the exact same max-cycles diagnosis instantly.
    sim_f, _src, sink_f = _loaded_chain()
    sim_u, _src, sink_u = _loaded_chain()
    with pytest.raises(SimulationError):
        sim_f.run(until=_watched(sink_f, 11), max_cycles=3000)
    with pytest.raises(SimulationError):
        sim_u.run(until=lambda _s: sink_u.count >= 11, max_cycles=3000)
    assert sim_f.cycle == sim_u.cycle
    assert list(sink_f.received) == list(sink_u.received)


def test_large_budget_deadlock_is_fast():
    import time

    sim, _src, sink = _loaded_chain()
    start = time.perf_counter()
    with pytest.raises(SimulationError):
        sim.run(until=_watched(sink, 11), max_cycles=2_000_000)
    assert time.perf_counter() - start < 5.0
    assert sim.cycle > 1_000_000  # the whole budget was really charged


def test_strict_predicate_raises_structured_error_on_observer():
    sim, _src, sink = _loaded_chain()
    sim.add_observer(lambda _s: None)
    strict = WatchedPredicate(
        lambda _s: sink.count >= 10,
        watches=(*sink.channel.valid, *sink.channel.ready),
        strict=True,
    )
    with pytest.raises(FusionBlockedError) as err:
        sim.run(until=strict, max_cycles=5000)
    kinds = [b["kind"] for b in err.value.blockers]
    assert "observer" in kinds


def test_observer_disables_fusion_but_run_still_correct():
    sim_o, _src, sink_o = _loaded_chain()
    seen = []
    sim_o.add_observer(lambda s: seen.append(s.cycle))
    sim_u, _src, sink_u = _loaded_chain()
    sim_o.run(until=_watched(sink_o, 10), max_cycles=5000)
    sim_u.run(until=lambda _s: sink_u.count >= 10, max_cycles=5000)
    assert sim_o.cycle == sim_u.cycle
    assert list(sink_o.received) == list(sink_u.received)
    # The observer really saw every stepped cycle — nothing was fused
    # past it.
    assert len(seen) == sim_o.cycle


def test_fusion_blockers_reporting():
    sim, _src, _sink = _loaded_chain()
    assert sim.fusion_blockers() == []
    sim_e, _src, _sink = _loaded_chain(engine="event")
    kinds = [b["kind"] for b in sim_e.fusion_blockers()]
    assert "engine" in kinds
    sim_o, _src, _sink = _loaded_chain()
    sim_o.add_observer(lambda _s: None)
    kinds = [b["kind"] for b in sim_o.fusion_blockers()]
    assert kinds.count("observer") == 1


def test_watch_slots_exposes_declared_signals():
    sim, _src, sink = _loaded_chain()
    pred = _watched(sink, 1)
    slots = pred.watch_slots()
    assert len(slots) == len(sink.channel.valid) + len(sink.channel.ready)


def test_until_requires_predicate():
    sim, _src, _sink = _loaded_chain()
    with pytest.raises(ValueError):
        sim.run()
    with pytest.raises(ValueError):
        sim.run(cycles=1, until=lambda _s: True)
