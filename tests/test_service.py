"""The HTTP front end: routes, structured errors, CLI↔service parity.

The server under test is the real ``ThreadingHTTPServer`` bound to a
free port on localhost, backed by an inline (``workers=0``) JobService
with an in-memory dedup store — the same wiring ``python -m
repro.serve --workers 0 --memory-store`` produces, minus the process.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve import ServiceClient, ServiceError, make_server
from repro.sweep import __main__ as sweep_cli
from repro.sweep.jobs import JobService
from repro.sweep.registry import _REGISTRY, Family, register_family, registry_payload
from repro.sweep.report import canonical_report
from repro.sweep.runner import run_campaign
from repro.sweep.spec import from_dict

CAMPAIGN = {
    "campaign": {"name": "http-test", "seed": 5, "workers": 2},
    "scenarios": [
        {
            "family": "mt_chain",
            "params": {"threads": 2, "n_funcs": 2},
            "stimulus": {"kind": "uniform", "items_per_thread": 6},
        },
        {
            "family": "mt_ring",
            "params": {"threads": 2, "n_funcs": 2},
            "grid": {"trips": [2, 3]},
            "stimulus": {"kind": "active", "items_per_thread": 5},
        },
    ],
}


@pytest.fixture
def service_client():
    service = JobService(workers=0, store=True)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    try:
        yield client, service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


class TestRoutes:
    def test_healthz(self, service_client):
        client, _service = service_client
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["workers"]["mode"] == "inline"
        assert health["store"]["entries"] == 0
        assert health["uptime_s"] >= 0

    def test_families_matches_registry_and_cli(self, service_client, capsys):
        client, _service = service_client
        payload = client.families()
        assert payload == registry_payload()
        # The CLI's --json output is byte-for-byte the same structure.
        assert sweep_cli.main(["families", "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        assert cli_payload == payload
        assert "mt_pipeline" in payload["families"]
        info = payload["families"]["mt_ring"]
        assert info["reusable"] is True
        assert "threads" in info["params"]
        assert "active" in info["stimulus_kinds"]

    def test_submit_status_report(self, service_client):
        client, _service = service_client
        status = client.submit(CAMPAIGN)
        assert status["id"].startswith("job-")
        assert status["name"] == "http-test"
        assert status["state"] in ("queued", "running", "done")
        report = client.report(status["id"], wait=60)
        assert report["summary"]["ok"] == 3
        final = client.status(status["id"])
        assert final["state"] == "done"
        assert final["ok"] == 3 and final["failed"] == 0

    def test_campaigns_listing(self, service_client):
        client, _service = service_client
        assert client.campaigns() == []
        job_id = client.submit(CAMPAIGN)["id"]
        client.report(job_id, wait=60)
        listed = client.campaigns()
        assert [job["id"] for job in listed] == [job_id]

    def test_unknown_job_is_404(self, service_client):
        client, _service = service_client
        for call in (
            lambda: client.status("job-999999"),
            lambda: client.report("job-999999"),
            lambda: client.cancel("job-999999"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, service_client):
        client, _service = service_client
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_body_is_400(self, service_client):
        client, _service = service_client
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/campaigns",
            data=b"not json {",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_spec_error_is_structured_400(self, service_client):
        client, _service = service_client
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"scenarios": [{"params": {"threads": 2}}]})
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        # The machine-readable shape satellite (b): {path, field, reason}.
        assert error["path"] == "scenarios[0]"
        assert error["field"] == "family"
        assert "family" in error["reason"]


class TestParity:
    def test_cli_and_http_reports_identical(self, service_client):
        client, _service = service_client
        via_cli = run_campaign(from_dict(CAMPAIGN), workers=1)
        via_http = client.run(CAMPAIGN)
        assert canonical_report(via_cli) == canonical_report(via_http)

    def test_warm_resubmission_is_pure_dedup(self, service_client):
        client, service = service_client
        cold = client.run(CAMPAIGN)
        warm = client.run(CAMPAIGN)
        assert warm["summary"]["dedup_hits"] == 3
        assert all(row["cached"] for row in warm["scenarios"])
        assert canonical_report(cold) == canonical_report(warm)
        health = client.healthz()
        assert health["store"]["entries"] == 3
        assert health["store"]["hits"] == 3
        assert service.store.stats()["hit_rate"] == pytest.approx(0.5)


class TestCancelAndWait:
    def test_report_409_then_cancel(self, service_client):
        client, _service = service_client
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        register_family(Family(
            name="_http_blocker", build=lambda p, e: object(),
            run=run, reusable=False,
        ))
        try:
            spec = {
                "campaign": {"name": "stuck", "seed": 1},
                "scenarios": [{"family": "_http_blocker"}] * 2,
            }
            job_id = client.submit(spec)["id"]
            assert started.wait(10)
            with pytest.raises(ServiceError) as excinfo:
                client.report(job_id)
            assert excinfo.value.status == 409
            assert excinfo.value.payload["error"]["state"] == "running"
            cancelled = client.cancel(job_id)
            assert cancelled["cancelled"] is True
            gate.set()
            report = client.report(job_id, wait=30)
            assert [r["status"] for r in report["scenarios"]] == [
                "ok", "cancelled",
            ]
            assert client.status(job_id)["state"] == "cancelled"
        finally:
            gate.set()
            _REGISTRY.pop("_http_blocker", None)

    def test_wait_blocks_until_done(self, service_client):
        client, _service = service_client
        job_id = client.submit(CAMPAIGN)["id"]
        # A single waiting call — no polling loop — must return the
        # finished report.
        report = client.report(job_id, wait=60)
        assert report["summary"]["scenarios"] == 3


class TestServeCLI:
    def test_main_binds_announces_and_drains(self, capsys):
        """`python -m repro.serve` wiring: bind, announce, clean exit."""
        import repro.serve.__main__ as serve_main

        captured = {}

        def spy_make_server(service, host, port, quiet):
            server = make_server(service, host=host, port=port, quiet=quiet)
            captured["server"] = server
            # Stop the serve loop shortly after it starts; main() then
            # runs its normal drain path.
            threading.Timer(0.2, server.shutdown).start()
            return server

        real = serve_main.make_server
        serve_main.make_server = spy_make_server
        try:
            rc = serve_main.main(
                ["--port", "0", "--workers", "0", "--memory-store"]
            )
        finally:
            serve_main.make_server = real
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.serve listening on http://" in out
        assert "(inline, store=memory)" in out
        assert "repro.serve stopped" in out


class TestObservabilityRoutes:
    """GET /metrics, /campaigns/<id>/trace and /campaigns/<id>/events."""

    def test_metrics_scrape_format_and_series(self, service_client):
        client, _service = service_client
        job_id = client.submit(CAMPAIGN)["id"]
        client.report(job_id, wait=30)
        text = client.metrics()
        # exposition validity: every line is a comment or name[{..}] value
        import re as re_mod

        sample = re_mod.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
        )
        for line in text.splitlines():
            assert line.startswith("#") or sample.match(line), (
                f"malformed exposition line: {line!r}"
            )
        for series in (
            "repro_jobs_submitted_total",
            'repro_jobs_completed_total{state="done"}',
            "repro_job_duration_seconds_bucket",
            "repro_scenario_duration_seconds_bucket",
            'repro_scenarios_completed_total{status="ok"}',
            "repro_dedup_lookups_total",
            "repro_queue_depth",
            "repro_pool_workers 0",
            "repro_pool_workers_alive 0",
        ):
            assert series in text, f"/metrics is missing {series}"
        assert "repro_jobs_submitted_total 1" in text
        assert 'repro_scenarios_completed_total{status="ok"} 3' in text

    def test_trace_route(self, service_client):
        client, _service = service_client
        job_id = client.submit(CAMPAIGN)["id"]
        client.report(job_id, wait=30)
        spans = client.trace(job_id)
        names = [s["name"] for s in spans]
        assert names.count("job") == 1
        assert {"unit", "scenario", "build", "simulate", "metrics"} <= (
            set(names)
        )
        assert all(s["trace_id"] == job_id for s in spans)

    def test_events_route_streams_every_scenario(self, service_client):
        client, _service = service_client
        job_id = client.submit(CAMPAIGN)["id"]
        events = list(client.events(job_id, timeout=60))
        scenario_events = [e for e in events if e["event"] == "scenario"]
        assert len(scenario_events) == 3
        assert len({e["key"] for e in scenario_events}) == 3
        assert events[-1]["event"] == "job"
        assert events[-1]["state"] == "done"
        # replay: a second consumer of a finished job sees the same log
        again = list(client.events(job_id, timeout=10))
        assert [e["seq"] for e in again] == [e["seq"] for e in events]

    def test_trace_and_events_unknown_job_404(self, service_client):
        client, _service = service_client
        with pytest.raises(ServiceError) as excinfo:
            client.trace("job-999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            list(client.events("job-999999"))
        assert excinfo.value.status == 404


class TestCLIFlags:
    def test_run_profile_and_follow(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(CAMPAIGN), encoding="utf-8")
        rc = sweep_cli.main([
            "run", str(spec_path), "--profile", "--follow",
            "--out", str(tmp_path / "out"), "--name", "obs",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        # --follow writes progress to stderr, report paths to stdout
        assert "[3/3]" in captured.err
        assert "wrote" in captured.out
        md = (tmp_path / "out" / "obs.md").read_text(encoding="utf-8")
        assert "## Profile" in md
        assert "| component |" in md
        # profile payloads are volatile: the JSON report keeps them,
        # the canonical comparison ignores them
        report = json.loads(
            (tmp_path / "out" / "obs.json").read_text(encoding="utf-8")
        )
        assert any("profile" in r for r in report["scenarios"])
        canon = canonical_report(report)
        assert all("profile" not in r for r in canon["scenarios"])
