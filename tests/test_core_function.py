"""Tests for shared MT function units: combinational, context-aware,
variable-latency (with and without the drain-accept bypass)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullMEB,
    MTChannel,
    MTContextFunction,
    MTFunction,
    MTMonitor,
    MTSink,
    MTSource,
    MTVariableLatencyUnit,
)
from repro.kernel import SimulationError, build


def mt_ch(name, threads=2, width=16):
    return MTChannel(name, threads=threads, width=width)


def make_unit(unit_cls, items, threads=2, **kwargs):
    inp = mt_ch("inp", threads)
    out = mt_ch("out", threads)
    src = MTSource("src", inp, items=items)
    unit = unit_cls("u", inp, out, **kwargs)
    sink = MTSink("snk", out)
    mon = MTMonitor("mon", out)
    sim = build(inp, out, src, unit, sink, mon)
    return sim, sink, mon, unit


class TestMTFunction:
    def test_shared_transform_all_threads(self):
        sim, sink, _mon, _u = make_unit(
            MTFunction, [[1, 2], [3]], fn=lambda d: d * 10
        )
        sim.run(until=lambda s: sink.count == 3, max_cycles=40)
        assert sink.values_for(0) == [10, 20]
        assert sink.values_for(1) == [30]

    def test_zero_latency(self):
        sim, sink, _mon, _u = make_unit(MTFunction, [[7], []], fn=lambda d: d)
        sim.run(until=lambda s: sink.count == 1, max_cycles=10)
        assert sink.cycles_for(0) == [0]

    def test_thread_count_mismatch(self):
        inp = mt_ch("inp", threads=2)
        out = mt_ch("out", threads=3)
        with pytest.raises(SimulationError):
            MTFunction("u", inp, out, fn=lambda d: d)

    def test_one_hot_preserved(self):
        sim, sink, mon, _u = make_unit(
            MTFunction, [[1, 2, 3], [4, 5, 6]], fn=lambda d: d + 1
        )
        sim.run(until=lambda s: sink.count == 6, max_cycles=60)
        # The monitor would raise on a multi-hot output; reaching here
        # with all items delivered proves the invariant held.
        assert mon.transfer_count() == 6


class TestMTContextFunction:
    def test_fn_receives_thread_index(self):
        sim, sink, _mon, _u = make_unit(
            MTContextFunction, [[10], [10]],
            fn=lambda d, t: d + t * 100,
        )
        sim.run(until=lambda s: sink.count == 2, max_cycles=20)
        assert sink.values_for(0) == [10]
        assert sink.values_for(1) == [110]

    def test_per_thread_context_table(self):
        offsets = {0: 5, 1: 7}
        sim, sink, _mon, _u = make_unit(
            MTContextFunction, [[1, 2], [1, 2]],
            fn=lambda d, t: d + offsets[t],
        )
        sim.run(until=lambda s: sink.count == 4, max_cycles=40)
        assert sink.values_for(0) == [6, 7]
        assert sink.values_for(1) == [8, 9]


class TestMTVariableLatencyUnit:
    def test_owner_thread_gets_result(self):
        sim, sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[], [42]], fn=lambda d: d + 1,
            latency=3,
        )
        sim.run(until=lambda s: sink.count == 1, max_cycles=20)
        assert sink.received == [(3, 1, 43)]

    def test_busy_blocks_all_threads(self):
        sim, sink, _mon, unit = make_unit(
            MTVariableLatencyUnit, [[1], [2]], fn=lambda d: d, latency=5,
        )
        sim.run(cycles=2)
        sim.settle()
        assert all(sig.value is False for sig in unit.inp.ready)

    def test_interleaves_threads(self):
        sim, sink, mon, _u = make_unit(
            MTVariableLatencyUnit, [[1, 2], [3, 4]], fn=lambda d: d,
            latency=1,
        )
        sim.run(until=lambda s: sink.count == 4, max_cycles=40)
        assert sink.values_for(0) == [1, 2]
        assert sink.values_for(1) == [3, 4]

    def test_bypass_sustains_one_per_latency(self):
        sim, sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[1, 2, 3, 4], []], fn=lambda d: d,
            latency=1, bypass=True,
        )
        sim.run(until=lambda s: sink.count == 4, max_cycles=30)
        gaps = [b - a for a, b in zip(sink.cycles_for(0),
                                      sink.cycles_for(0)[1:])]
        assert all(g == 1 for g in gaps)

    def test_no_bypass_adds_handoff_cycle(self):
        sim, sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[1, 2, 3], []], fn=lambda d: d,
            latency=1, bypass=False,
        )
        sim.run(until=lambda s: sink.count == 3, max_cycles=30)
        gaps = [b - a for a, b in zip(sink.cycles_for(0),
                                      sink.cycles_for(0)[1:])]
        assert all(g == 2 for g in gaps)

    def test_callable_latency_per_item(self):
        sim, sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[2, 5], []], fn=lambda d: d,
            latency=lambda d, k: d,
        )
        sim.run(until=lambda s: sink.count == 2, max_cycles=40)
        assert sink.values_for(0) == [2, 5]

    def test_iterable_latency_exhaustion(self):
        sim, _sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[1, 2], []], fn=lambda d: d,
            latency=iter([1]),
        )
        with pytest.raises(SimulationError):
            sim.run(cycles=20)

    def test_zero_latency_rejected(self):
        sim, _sink, _mon, _u = make_unit(
            MTVariableLatencyUnit, [[1], []], fn=lambda d: d, latency=0,
        )
        with pytest.raises(SimulationError):
            sim.run(cycles=5)

    def test_result_held_until_owner_ready(self):
        inp = mt_ch("inp")
        out = mt_ch("out")
        src = MTSource("src", inp, items=[[9], []])
        unit = MTVariableLatencyUnit("u", inp, out, fn=lambda d: d + 1,
                                     latency=2)
        sink = MTSink("snk", out, patterns=[lambda c: c >= 7, None])
        sim = build(inp, out, src, unit, sink)
        sim.run(until=lambda s: sink.count == 1, max_cycles=20)
        assert sink.received == [(7, 0, 10)]


class TestUnitsBetweenMEBs:
    """Integration: MEB -> shared VLU -> MEB keeps all threads flowing."""

    def test_latency_hidden_by_multithreading(self):
        threads = 4
        c0 = mt_ch("c0", threads)
        c1 = mt_ch("c1", threads)
        c2 = mt_ch("c2", threads)
        c3 = mt_ch("c3", threads)
        items = [list(range(6)) for _ in range(threads)]
        src = MTSource("src", c0, items=items)
        m0 = FullMEB("m0", c0, c1)
        vlu = MTVariableLatencyUnit("vlu", c1, c2, fn=lambda d: d,
                                    latency=1)
        m1 = FullMEB("m1", c2, c3)
        sink = MTSink("snk", c3)
        mon = MTMonitor("mon", c3)
        sim = build(c0, c1, c2, c3, src, m0, vlu, m1, sink, mon)
        sim.run(until=lambda s: sink.count == 24, max_cycles=200)
        for t in range(threads):
            assert sink.values_for(t) == list(range(6))
        # The shared unit (latency 1 with bypass) sustains ~1/cycle.
        assert mon.throughput_window(4, 24) > 0.9


@settings(max_examples=30, deadline=None)
@given(
    latencies=st.lists(st.integers(1, 4), min_size=1, max_size=8),
    streams=st.lists(
        st.lists(st.integers(0, 50), min_size=0, max_size=4),
        min_size=2, max_size=3,
    ),
)
def test_vlu_conserves_tokens_property(latencies, streams):
    """Property: any latency schedule and thread mix delivers every
    token exactly once, per-thread in order."""
    threads = len(streams)
    inp = MTChannel("inp", threads=threads)
    out = MTChannel("out", threads=threads)
    src = MTSource("src", inp, items=streams)
    lat_cycle = lambda d, k: latencies[k % len(latencies)]
    unit = MTVariableLatencyUnit("u", inp, out, fn=lambda d: d,
                                 latency=lat_cycle)
    sink = MTSink("snk", out)
    sim = build(inp, out, src, unit, sink)
    total = sum(len(s) for s in streams)
    sim.run(cycles=total * (max(latencies) + 2) + 20)
    for t, stream in enumerate(streams):
        assert sink.values_for(t) == stream
