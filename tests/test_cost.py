"""Tests for the area/timing cost model — including the model-level form
of the paper's Table I claims (reduced MEB smaller, savings grow with S).
"""

import pytest

from repro.core import Barrier, FullMEB, MTChannel, ReducedMEB
from repro.cost import (
    AreaModel,
    TimingModel,
    adder_luts,
    average_savings,
    comparator_luts,
    ComparisonRow,
    DesignCost,
    logic_unit_luts,
    mux_tree_luts,
    savings_sweep_table,
    shifter_luts,
    table1,
)
from repro.kernel import Component


def make_meb(meb_cls, threads, width=32):
    up = MTChannel("up", threads=threads, width=width)
    down = MTChannel("down", threads=threads, width=width)
    return meb_cls("meb", up, down)


class TestAreaModel:
    def test_ff_cost_scales_with_width(self):
        model = AreaModel(routing_overhead=1.0)
        area = model.items_area([("ff", 2, 32)])
        assert area.total_le == 64
        assert area.ff_bits == 64

    def test_lut_cost_ignores_width_field(self):
        model = AreaModel(routing_overhead=1.0)
        area = model.items_area([("lut", 5, 1)])
        assert area.total_le == 5
        assert area.luts == 5

    def test_routing_overhead_applied(self):
        model = AreaModel(routing_overhead=1.5)
        area = model.items_area([("ff", 1, 10)])
        assert area.total_le == pytest.approx(15.0)

    def test_unknown_primitive_rejected(self):
        model = AreaModel()
        with pytest.raises(KeyError):
            model.items_area([("magic", 1, 1)])

    def test_breakdown_addition(self):
        model = AreaModel(routing_overhead=1.0)
        a = model.items_area([("ff", 1, 8)])
        b = model.items_area([("mux2", 1, 8)])
        combined = a + b
        assert combined.total_le == 16
        assert combined.ff_bits == 8
        assert combined.mux_bits == 8

    def test_component_area_aggregates_subtree(self):
        model = AreaModel(routing_overhead=1.0)

        class Leaf(Component):
            def area_items(self):
                return [("ff", 1, 4)]

        top = Component("top")
        Leaf("a", parent=top)
        Leaf("b", parent=top)
        assert model.component_area(top).total_le == 8


class TestMEBAreaClaims:
    """Model-level versions of the paper's §III / Table I statements."""

    @pytest.mark.parametrize("threads", [2, 4, 8, 16])
    def test_reduced_meb_smaller_than_full(self, threads):
        model = AreaModel()
        full = model.component_area(make_meb(FullMEB, threads)).total_le
        red = model.component_area(make_meb(ReducedMEB, threads)).total_le
        assert red < full

    def test_storage_counts_match_slot_arithmetic(self):
        """Full buffers 2S words, reduced S+1 (paper §III-A)."""
        width = 32
        for s in (4, 8):
            model = AreaModel(routing_overhead=1.0)
            full = model.component_area(make_meb(FullMEB, s, width))
            red = model.component_area(make_meb(ReducedMEB, s, width))
            # Data storage bits dominate the ff count; subtract control.
            assert full.ff_bits >= 2 * s * width
            assert red.ff_bits >= (s + 1) * width
            assert red.ff_bits < full.ff_bits

    def test_savings_grow_with_thread_count(self):
        """Paper §V-C: going from 8 to 16 threads raises the savings."""
        model = AreaModel()

        def savings(s):
            full = model.component_area(make_meb(FullMEB, s)).total_le
            red = model.component_area(make_meb(ReducedMEB, s)).total_le
            return 1 - red / full

        assert savings(16) > savings(8) > savings(4)

    def test_barrier_area_scales_with_participants(self):
        model = AreaModel()

        def barrier_area(threads):
            up = MTChannel("u", threads=threads)
            down = MTChannel("d", threads=threads)
            return model.component_area(
                Barrier("b", up, down)
            ).total_le

        assert barrier_area(8) > barrier_area(2)


class TestTimingModel:
    def test_period_grows_with_area(self):
        tm = TimingModel()
        assert tm.period_ns(10, 10000) > tm.period_ns(10, 5000)

    def test_fmax_inverse_of_period(self):
        tm = TimingModel(wire_ns_per_sqrt_le=0.0)
        assert tm.fmax_mhz(10.0, 0) == pytest.approx(100.0)

    def test_reduced_design_is_faster(self):
        """Smaller area => shorter wires => higher fmax (Table I shape)."""
        tm = TimingModel()
        assert tm.fmax_mhz(80.0, 11200) > tm.fmax_mhz(80.0, 12780)

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            TimingModel().period_ns(1.0, -5)


class TestEstimators:
    def test_adder(self):
        assert adder_luts(32) == 32

    def test_logic_unit(self):
        assert logic_unit_luts(32) == 32

    def test_mux_tree(self):
        assert mux_tree_luts(8, 32) == 7 * 32
        assert mux_tree_luts(1, 32) == 0

    def test_shifter(self):
        assert shifter_luts(32) == 5 * 32

    def test_comparator(self):
        assert comparator_luts(32) == 16


class TestReport:
    def make_rows(self):
        full = DesignCost("md5", "full", 12780, 11.0)
        red = DesignCost("md5", "reduced", 11200, 12.0)
        full_p = DesignCost("proc", "full", 6850, 60.0)
        red_p = DesignCost("proc", "reduced", 5590, 68.0)
        return [
            ComparisonRow("md5", full, red),
            ComparisonRow("proc", full_p, red_p),
        ]

    def test_savings_computation(self):
        rows = self.make_rows()
        assert rows[0].area_savings == pytest.approx(0.1236, abs=1e-3)
        assert rows[1].area_savings == pytest.approx(0.1839, abs=1e-3)
        # The paper's "average 15%".
        assert average_savings(rows) == pytest.approx(0.1538, abs=1e-3)

    def test_speedup(self):
        rows = self.make_rows()
        assert rows[0].speedup == pytest.approx(12 / 11)

    def test_table_rendering(self):
        text = table1(self.make_rows(), title="TABLE I")
        assert "TABLE I" in text
        assert "md5" in text and "proc" in text
        assert "12780" in text
        assert "Average area savings" in text

    def test_average_needs_rows(self):
        with pytest.raises(ValueError):
            average_savings([])

    def test_sweep_table(self):
        text = savings_sweep_table("md5", [(8, 1000, 850), (16, 2000, 1500)])
        assert "8" in text and "25.0%" in text
