"""Tests for the dataflow IR, validation, and elaboration."""

import pytest

from repro.netlist import (
    DataflowGraph,
    GraphValidationError,
    NodeKind,
    elaborate,
    validate,
)
from repro.kernel.errors import WiringError


def linear_graph(items=((1, 2, 3),), threads=1):
    g = DataflowGraph("pipe")
    g.source("src", items=list(items) if threads > 1 else list(items[0]))
    g.buffer("b0")
    g.op("inc", fn=lambda d: d + 1, area_luts=8)
    g.buffer("b1")
    g.sink("snk")
    g.chain("src", "b0", "inc", "b1", "snk")
    return g


class TestGraphBuilding:
    def test_duplicate_node_rejected(self):
        g = DataflowGraph("g")
        g.buffer("b")
        with pytest.raises(WiringError):
            g.buffer("b")

    def test_connect_unknown_node_rejected(self):
        g = DataflowGraph("g")
        g.buffer("b")
        with pytest.raises(WiringError):
            g.connect("b", "nope")

    def test_chain_builds_edges(self):
        g = linear_graph()
        assert len(g.edges) == 4

    def test_queries(self):
        g = linear_graph()
        assert g.successors("src") == ["b0"]
        assert len(g.in_edges("snk")) == 1
        assert len(g.out_edges("src")) == 1


class TestValidation:
    def test_valid_graph_passes(self):
        issues = validate(linear_graph())
        assert not any(i.severity == "error" for i in issues)

    def test_unconnected_port_caught(self):
        g = DataflowGraph("g")
        g.source("src", items=[1])
        g.buffer("b")
        g.connect("src", "b")
        # buffer output dangling
        with pytest.raises(GraphValidationError) as exc:
            validate(g)
        assert "unconnected" in str(exc.value)

    def test_double_driver_caught(self):
        g = DataflowGraph("g")
        g.source("s1", items=[1])
        g.source("s2", items=[2])
        g.sink("k")
        g.connect("s1", "k")
        g.connect("s2", "k")
        with pytest.raises(GraphValidationError):
            validate(g)

    def test_implicit_fanout_caught(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.sink("k1")
        g.sink("k2")
        g.connect("s", "k1")
        g.connect("s", "k2")
        with pytest.raises(GraphValidationError) as exc:
            validate(g)
        assert "fork" in str(exc.value)

    def test_missing_selector_caught(self):
        g = DataflowGraph("g")
        node = g._add("br", NodeKind.BRANCH, n_outputs=2)
        g.source("s", items=[1])
        g.sink("k0")
        g.sink("k1")
        g.connect("s", "br")
        g.connect("br", "k0", src_port=0)
        g.connect("br", "k1", src_port=1)
        with pytest.raises(GraphValidationError) as exc:
            validate(g)
        assert "selector" in str(exc.value)

    def test_bufferless_cycle_caught(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.merge("m")
        g.op("f", fn=lambda d: d)
        g.branch("br", selector=lambda d: 0)
        g.sink("k")
        g.connect("s", "m", dst_port=0)
        g.connect("m", "f")
        g.connect("f", "br")
        g.connect("br", "k", src_port=0)
        g.connect("br", "m", src_port=1, dst_port=1)
        with pytest.raises(GraphValidationError) as exc:
            validate(g)
        assert "cycle" in str(exc.value)

    def test_buffered_cycle_allowed(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.merge("m")
        g.buffer("b")
        g.branch("br", selector=lambda d: 1)  # always exit
        g.sink("k")
        g.connect("s", "m", dst_port=0)
        g.connect("m", "b")
        g.connect("b", "br")
        g.connect("br", "m", src_port=0, dst_port=1)
        g.connect("br", "k", src_port=1)
        issues = validate(g)
        assert not any(i.severity == "error" for i in issues)


class TestElaborationSingleThread:
    def test_linear_pipeline_runs(self):
        elab = elaborate(linear_graph(), threads=1)
        snk = elab.sink("snk")
        elab.run(until=lambda s: snk.count == 3, max_cycles=50)
        assert snk.values() == [2, 3, 4]

    def test_monitors_created_per_edge(self):
        g = linear_graph()
        elab = elaborate(g, threads=1)
        assert len(elab.monitors) == len(g.edges)

    def test_monitorless_elaboration(self):
        elab = elaborate(linear_graph(), threads=1, monitors=False)
        assert elab.monitors == {}

    def test_barrier_rejected_single_thread(self):
        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.barrier("bar")
        g.sink("k")
        g.chain("s", "bar", "k")
        with pytest.raises(WiringError):
            elaborate(g, threads=1)


class TestElaborationMultithread:
    @pytest.mark.parametrize("meb", ["full", "reduced"])
    def test_mt_pipeline_runs(self, meb):
        g = linear_graph(items=([1, 2], [10, 20]), threads=2)
        elab = elaborate(g, threads=2, meb=meb)
        snk = elab.sink("snk")
        elab.run(until=lambda s: snk.count == 4, max_cycles=80)
        assert snk.values_for(0) == [2, 3]
        assert snk.values_for(1) == [11, 21]

    def test_bad_meb_kind_rejected(self):
        with pytest.raises(ValueError):
            elaborate(linear_graph(), threads=2, meb="tiny")

    def test_mt_source_stream_count_checked(self):
        g = linear_graph(items=([1, 2],), threads=2)
        with pytest.raises(WiringError):
            elaborate(g, threads=2)

    def test_fork_join_diamond(self):
        g = DataflowGraph("diamond")
        g.source("s", items=[[1, 2], [3]])
        g.fork("f", n_outputs=2)
        g.buffer("ba")
        g.buffer("bb")
        g.join("j", n_inputs=2, combine=lambda a, b: a + b)
        g.sink("k")
        g.connect("s", "f")
        g.connect("f", "ba", src_port=0)
        g.connect("f", "bb", src_port=1)
        g.connect("ba", "j", dst_port=0)
        g.connect("bb", "j", dst_port=1)
        g.connect("j", "k")
        elab = elaborate(g, threads=2)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 3, max_cycles=120)
        assert snk.values_for(0) == [2, 4]
        assert snk.values_for(1) == [6]

    def test_mt_loop_with_branch_merge(self):
        """Items loop until their counter reaches 3, then exit."""
        g = DataflowGraph("loop")
        g.source("s", items=[[(0, "a")], [(0, "b")]])
        g.merge("m", n_inputs=2)
        g.buffer("b")
        g.op("bump", fn=lambda d: (d[0] + 1, d[1]))
        g.buffer("b2")
        g.branch("br", selector=lambda d: 1 if d[0] >= 3 else 0)
        g.sink("k")
        g.connect("s", "m", dst_port=0)
        g.connect("m", "b")
        g.connect("b", "bump")
        g.connect("bump", "b2")
        g.connect("b2", "br")
        g.connect("br", "m", src_port=0, dst_port=1)
        g.connect("br", "k", src_port=1)
        elab = elaborate(g, threads=2)
        snk = elab.sink("k")
        elab.run(until=lambda s: snk.count == 2, max_cycles=200)
        assert snk.values_for(0) == [(3, "a")]
        assert snk.values_for(1) == [(3, "b")]

    def test_barrier_in_graph(self):
        g = DataflowGraph("bar")
        g.source("s", items=[["x"], ["y"]])
        g.buffer("b")
        g.barrier("bar")
        g.sink("k")
        g.chain("s", "b", "bar", "k")
        elab = elaborate(g, threads=2)
        snk = elab.sink("k")
        bar = elab.components["bar"]
        elab.run(until=lambda s: snk.count == 2, max_cycles=80)
        assert bar.releases == 1


class TestRendering:
    def test_to_dot_contains_all_nodes(self):
        from repro.netlist import to_dot

        g = linear_graph()
        dot = to_dot(g, title="pipe")
        for name in g.nodes:
            assert f'"{name}"' in dot
        assert "digraph" in dot
        assert "pipe" in dot

    def test_to_dot_edge_labels_show_width(self):
        from repro.netlist import to_dot

        g = DataflowGraph("g")
        g.source("s", items=[1])
        g.sink("k")
        g.connect("s", "k", width=64)
        assert "64b" in to_dot(g)

    def test_elaboration_cost_totals(self):
        from repro.netlist import elaboration_cost

        elab = elaborate(linear_graph(items=([1], [2]), threads=2), threads=2)
        per_node, total = elaboration_cost(elab)
        assert total > 0
        # Buffers dominate: two MEBs with real storage.
        assert per_node["b0"].total_le > per_node["inc"].total_le
        assert total == pytest.approx(
            sum(a.total_le for a in per_node.values())
        )

    def test_cost_report_renders(self):
        from repro.netlist import cost_report

        elab = elaborate(linear_graph(), threads=1)
        text = cost_report(elab)
        assert "total" in text
        assert "b0" in text

    def test_full_vs_reduced_costs_from_same_graph(self):
        """One graph, both Table-I design points."""
        from repro.netlist import elaboration_cost

        g_items = ([1], [2], [3], [4])
        totals = {}
        for meb in ("full", "reduced"):
            elab = elaborate(linear_graph(items=g_items, threads=4),
                             threads=4, meb=meb)
            _per, totals[meb] = elaboration_cost(elab)
        assert totals["reduced"] < totals["full"]
