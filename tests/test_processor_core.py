"""Tests for the multithreaded elastic processor (paper §V-B)."""

import pytest

from repro.apps.processor import Processor, programs
from repro.apps.processor.memory import DataMemoryArray, InstructionMemory
from repro.apps.processor.regfile import RegisterFileArray
from repro.kernel import SimulationError


def run_program(program, meb="reduced", threads=2, thread=0, image=None,
                **kwargs):
    cpu = Processor(threads=threads, meb=meb, **kwargs)
    cpu.load_program(thread, program.source)
    if image:
        for addr, value in image.items():
            cpu.dmem.write(thread, addr, value)
    stats = cpu.run()
    kind, where = program.check
    got = cpu.reg(thread, where) if kind == "reg" else cpu.mem_word(thread, where)
    return cpu, stats, got


class TestMemoriesAndRegfile:
    def test_imem_load_fetch(self):
        imem = InstructionMemory("i")
        imem.load([1, 2, 3], base=8)
        assert imem.fetch(12) == 2

    def test_imem_unloaded_fetch_raises(self):
        imem = InstructionMemory("i")
        with pytest.raises(SimulationError):
            imem.fetch(0)

    def test_imem_unaligned_rejected(self):
        imem = InstructionMemory("i")
        with pytest.raises(SimulationError):
            imem.fetch(2)

    def test_dmem_private_per_thread(self):
        dmem = DataMemoryArray("d", threads=2)
        dmem.write(0, 4, 111)
        assert dmem.read(0, 4) == 111
        assert dmem.read(1, 4) == 0  # thread 1 unaffected

    def test_dmem_default_zero(self):
        dmem = DataMemoryArray("d", threads=1)
        assert dmem.read(0, 0x40) == 0

    def test_regfile_x0_hardwired(self):
        rf = RegisterFileArray("r", threads=1)
        rf.write(0, 0, 99)
        assert rf.read(0, 0) == 0

    def test_regfile_per_thread_banks(self):
        rf = RegisterFileArray("r", threads=2)
        rf.write(0, 5, 10)
        rf.write(1, 5, 20)
        assert rf.read(0, 5) == 10
        assert rf.read(1, 5) == 20

    def test_memories_excluded_from_le(self):
        assert InstructionMemory("i").area_items() == []
        assert DataMemoryArray("d", 2).area_items() == []
        assert RegisterFileArray("r", 2).area_items() == []


@pytest.mark.parametrize("meb", ["full", "reduced"])
class TestSingleThreadPrograms:
    def test_sum_to_n(self, meb):
        prog = programs.sum_to_n(10)
        _cpu, _stats, got = run_program(prog, meb=meb)
        assert got == prog.expected == 55

    def test_fibonacci(self, meb):
        prog = programs.fibonacci(12)
        _cpu, _stats, got = run_program(prog, meb=meb)
        assert got == prog.expected == 144

    def test_gcd(self, meb):
        prog = programs.gcd(126, 84)
        _cpu, _stats, got = run_program(prog, meb=meb)
        assert got == prog.expected == 42

    def test_memcpy(self, meb):
        prog, image = programs.memcpy([11, 22, 33, 44])
        cpu, _stats, got = run_program(prog, meb=meb, image=image)
        assert got == prog.expected
        for i, v in enumerate([11, 22, 33, 44]):
            assert cpu.mem_word(0, 0x200 + 4 * i) == v

    def test_dot_product_uses_mul(self, meb):
        prog, image = programs.dot_product([1, 2, 3], [4, 5, 6])
        _cpu, _stats, got = run_program(prog, meb=meb, image=image)
        assert got == prog.expected == 32

    def test_shift_playground(self, meb):
        prog = programs.shift_playground(37)
        _cpu, _stats, got = run_program(prog, meb=meb)
        assert got == prog.expected


class TestControlFlow:
    def test_jalr_returns(self):
        cpu = Processor(threads=1)
        cpu.load_program(0, """
            jal  x1, sub            ; call: x1 = return address
            addi x3, x3, 100        ; executed after return
            halt
        sub:
            addi x3, x0, 5
            jalr x0, x1, 0          ; return
        """, base=0)
        cpu.run()
        assert cpu.reg(0, 3) == 105

    def test_branch_not_taken_falls_through(self):
        cpu = Processor(threads=1)
        cpu.load_program(0, """
            addi x1, x0, 1
            beq  x1, x0, skip
            addi x2, x0, 7
        skip:
            halt
        """, base=0)
        cpu.run()
        assert cpu.reg(0, 2) == 7

    def test_x0_writes_discarded(self):
        cpu = Processor(threads=1)
        cpu.load_program(0, """
            addi x0, x0, 55
            add  x1, x0, x0
            halt
        """, base=0)
        cpu.run()
        assert cpu.reg(0, 1) == 0

    def test_negative_immediates(self):
        cpu = Processor(threads=1)
        cpu.load_program(0, """
            addi x1, x0, -1
            slt  x2, x1, x0
            halt
        """, base=0)
        cpu.run()
        assert cpu.reg(0, 1) == 0xFFFFFFFF
        assert cpu.reg(0, 2) == 1


@pytest.mark.parametrize("meb", ["full", "reduced"])
class TestMultithreadedExecution:
    def test_eight_threads_mixed_workload(self, meb):
        cpu = Processor(threads=8, meb=meb)
        progs = programs.standard_mix()
        for t, prog in enumerate(progs):
            cpu.load_program(t, prog.source)
        cpu.run()
        for t, prog in enumerate(progs):
            kind, where = prog.check
            got = (cpu.reg(t, where) if kind == "reg"
                   else cpu.mem_word(t, where))
            assert got == prog.expected, f"thread {t} ({prog.name})"

    def test_threads_have_private_registers(self, meb):
        cpu = Processor(threads=2, meb=meb)
        cpu.load_program(0, "addi x1, x0, 100\nhalt")
        cpu.load_program(1, "addi x1, x0, 200\nhalt")
        cpu.run()
        assert cpu.reg(0, 1) == 100
        assert cpu.reg(1, 1) == 200

    def test_threads_have_private_memory(self, meb):
        cpu = Processor(threads=2, meb=meb)
        cpu.load_program(0, "addi x1, x0, 1\nsw x1, x0, 0\nhalt")
        cpu.load_program(1, "addi x1, x0, 2\nsw x1, x0, 0\nhalt")
        cpu.run()
        assert cpu.mem_word(0, 0) == 1
        assert cpu.mem_word(1, 0) == 2

    def test_retired_instruction_counts(self, meb):
        cpu = Processor(threads=2, meb=meb)
        cpu.load_program(0, "addi x1, x0, 1\naddi x2, x0, 2\nhalt")
        cpu.load_program(1, "halt")
        stats = cpu.run()
        assert stats.retired[0] == 3
        assert stats.retired[1] == 1
        assert stats.total_retired == 4


class TestMultithreadingHidesLatency:
    """Paper §I: time-multiplexing threads raises utilization: 8 threads
    on slow memories achieve far better total IPC than 1 thread."""

    @staticmethod
    def ipc_with_threads(n_threads):
        cpu = Processor(threads=n_threads, meb="reduced",
                        imem_latency=2, dmem_latency=4)
        for t in range(n_threads):
            cpu.load_program(t, programs.spin(30).source)
        stats = cpu.run()
        return stats.total_retired / stats.cycles

    def test_ipc_scales_with_threads(self):
        ipc1 = self.ipc_with_threads(1)
        ipc4 = self.ipc_with_threads(4)
        ipc8 = self.ipc_with_threads(8)
        assert ipc4 > 2.0 * ipc1
        assert ipc8 > ipc4

    def test_full_and_reduced_same_cycle_count(self):
        """Table I note: reduced MEBs do not cost throughput — the mixed
        workload finishes in (nearly) the same number of cycles."""
        results = {}
        for meb in ("full", "reduced"):
            cpu = Processor(threads=4, meb=meb)
            for t, prog in enumerate(programs.standard_mix()[:4]):
                cpu.load_program(t, prog.source)
            stats = cpu.run()
            results[meb] = stats.cycles
        ratio = results["reduced"] / results["full"]
        assert ratio < 1.05, f"reduced MEB cost {ratio:.2f}x cycles"


class TestVariableLatencyUnits:
    def test_results_correct_under_slow_memory(self):
        prog, image = programs.memcpy([5, 6, 7])
        _cpu, _stats, got = run_program(prog, image=image, dmem_latency=7)
        assert got == prog.expected

    def test_results_correct_under_slow_fetch(self):
        prog = programs.sum_to_n(5)
        _cpu, _stats, got = run_program(prog, imem_latency=3)
        assert got == prog.expected == 15

    def test_random_fetch_latency(self):
        lat = [1, 3, 2, 1, 4]
        prog = programs.fibonacci(8)
        _cpu, _stats, got = run_program(
            prog, imem_latency=lambda d, k: lat[k % len(lat)]
        )
        assert got == prog.expected == 21

    def test_mul_latency_respected(self):
        prog, image = programs.dot_product([3], [9])
        cpu, stats, got = run_program(prog, image=image, mul_latency=6)
        assert got == 27


class TestProcessorConstruction:
    def test_bad_meb_kind(self):
        with pytest.raises(ValueError):
            Processor(meb="giant")

    def test_default_code_segments_disjoint(self):
        cpu = Processor(threads=3)
        bases = [cpu.load_program(t, "halt") for t in range(3)]
        assert bases == [0x0000, 0x1000, 0x2000]

    def test_run_cycles_partial(self):
        cpu = Processor(threads=1)
        cpu.load_program(0, programs.spin(100).source)
        stats = cpu.run_cycles(10)
        assert stats.cycles == 10
        assert not cpu.pc_unit.all_halted

    def test_area_components_include_mebs(self):
        cpu = Processor(threads=2)
        assert len(cpu.meb_components()) == 4
        assert cpu.pc_unit in cpu.area_components()

    def test_monitored_build(self):
        cpu = Processor(threads=1, monitor=True)
        cpu.load_program(0, "addi x1, x0, 1\nhalt")
        cpu.run()
        assert cpu.monitors["c_mo"].transfer_count() == 2
