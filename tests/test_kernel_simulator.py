"""Tests for the two-phase simulator: settle loop, clocking, run control."""

import pytest

from repro.kernel import (
    Component,
    ConvergenceError,
    SimulationError,
    Simulator,
    TraceRecorder,
    build,
)


class Counter(Component):
    """Registered counter: classic sequential behaviour."""

    def __init__(self, name):
        super().__init__(name)
        self.out = self.output("out", width=8, init=0)
        self._value = 0
        self._next = None

    def combinational(self):
        self.out.set(self._value)

    def capture(self):
        self._next = self._value + 1

    def commit(self):
        self._value = self._next

    def reset(self):
        self._value = 0
        self._next = None


class Doubler(Component):
    """Combinational: out = 2 * in."""

    def __init__(self, name, src):
        super().__init__(name)
        self.src = src
        self.out = self.output("out", width=8, init=0)

    def combinational(self):
        self.out.set(2 * self.src.value)


class Oscillator(Component):
    """Deliberate combinational loop: out = !out."""

    def __init__(self, name):
        super().__init__(name)
        self.out = self.output("out", init=False)

    def combinational(self):
        self.out.set(not self.out.value)


class TestSettle:
    def test_combinational_chain_settles(self):
        counter = Counter("cnt")
        doubler = Doubler("dbl", counter.out)
        sim = build(counter, doubler)
        sim.settle()
        assert doubler.out.value == 0
        sim.step()
        sim.settle()
        assert counter.out.value == 1
        assert doubler.out.value == 2

    def test_settle_returns_iteration_count(self):
        counter = Counter("cnt")
        sim = build(counter)
        # One pass to compute, one to confirm stability.
        assert sim.settle() <= 2

    def test_oscillator_raises_convergence_error(self):
        sim = build(Oscillator("osc"))
        with pytest.raises(ConvergenceError) as exc:
            sim.settle()
        assert "osc.out" in str(exc.value)

    def test_convergence_error_carries_diagnostics(self):
        sim = build(Oscillator("osc"), max_settle_iterations=5)
        with pytest.raises(ConvergenceError) as exc:
            sim.settle()
        assert exc.value.iterations == 5
        assert exc.value.unstable == ["osc.out"]


class TestClocking:
    def test_step_advances_cycle(self):
        sim = build(Counter("cnt"))
        assert sim.cycle == 0
        sim.step()
        assert sim.cycle == 1

    def test_counter_counts(self):
        counter = Counter("cnt")
        sim = build(counter)
        sim.run(cycles=5)
        sim.settle()
        assert counter.out.value == 5

    def test_capture_commit_is_race_free(self):
        # Two counters where B registers A's output; regardless of order
        # B must see A's *pre-edge* value (nonblocking semantics).
        class Follower(Component):
            def __init__(self, name, src):
                super().__init__(name)
                self.src = src
                self.out = self.output("out", init=0)
                self._value = 0
                self._next = None

            def combinational(self):
                self.out.set(self._value)

            def capture(self):
                self._next = self.src.value

            def commit(self):
                self._value = self._next

            def reset(self):
                self._value = 0

        counter = Counter("cnt")
        follower = Follower("fol", counter.out)
        sim = build(counter, follower)
        sim.run(cycles=3)
        sim.settle()
        # After 3 edges: counter=3, follower holds counter's value at edge 3,
        # which was 2.
        assert counter.out.value == 3
        assert follower.out.value == 2

    def test_reset_restores_initial_state(self):
        counter = Counter("cnt")
        sim = build(counter)
        sim.run(cycles=7)
        sim.reset()
        assert sim.cycle == 0
        sim.settle()
        assert counter.out.value == 0


class TestRunControl:
    def test_run_requires_exactly_one_mode(self):
        sim = build(Counter("cnt"))
        with pytest.raises(ValueError):
            sim.run()
        with pytest.raises(ValueError):
            sim.run(cycles=1, until=lambda s: True)

    def test_run_until_predicate(self):
        counter = Counter("cnt")
        sim = build(counter)
        sim.run(until=lambda s: counter.out.value == 4)
        assert counter.out.value == 4

    def test_run_until_deadlock_guard(self):
        sim = build(Counter("cnt"))
        with pytest.raises(SimulationError):
            sim.run(until=lambda s: False, max_cycles=10)

    def test_add_after_start_rejected(self):
        sim = build(Counter("cnt"))
        sim.step()
        with pytest.raises(SimulationError):
            sim.add(Counter("late"))

    def test_find_component_by_path(self):
        counter = Counter("cnt")
        sim = build(counter)
        assert sim.find("cnt") is counter
        with pytest.raises(KeyError):
            sim.find("nope")

    def test_signal_by_name(self):
        counter = Counter("cnt")
        sim = build(counter)
        assert sim.signal_by_name("cnt.out") is counter.out
        with pytest.raises(KeyError):
            sim.signal_by_name("cnt.missing")


class TestTrace:
    def test_trace_records_every_cycle(self):
        counter = Counter("cnt")
        sim = Simulator()
        sim.add(counter)
        sim.reset()
        rec = TraceRecorder([counter.out], labels=["count"]).attach(sim)
        sim.run(cycles=4)
        assert rec.column("count") == [0, 1, 2, 3]
        assert rec.cycles == [0, 1, 2, 3]

    def test_ascii_waveform_contains_values(self):
        counter = Counter("cnt")
        sim = Simulator()
        sim.add(counter)
        sim.reset()
        rec = TraceRecorder([counter.out], labels=["count"]).attach(sim)
        sim.run(cycles=3)
        art = rec.ascii_waveform()
        assert "count" in art
        assert "2" in art

    def test_vcd_export(self, tmp_path):
        counter = Counter("cnt")
        sim = Simulator()
        sim.add(counter)
        sim.reset()
        rec = TraceRecorder([counter.out], labels=["count"]).attach(sim)
        sim.run(cycles=3)
        path = tmp_path / "dump.vcd"
        rec.write_vcd(str(path))
        text = path.read_text()
        assert "$enddefinitions" in text
        assert "#0" in text

    def test_trace_label_mismatch_rejected(self):
        counter = Counter("cnt")
        with pytest.raises(ValueError):
            TraceRecorder([counter.out], labels=["a", "b"])
