"""Differential validation: event and compiled engines vs. naive oracle.

The naive whole-design fixed-point loop is the semantics oracle; the
event engine *and* the slot-compiled engine must be indistinguishable
from it at cycle granularity.  Every network family in the repo is
built once per engine and driven for the same number of cycles while
*every signal in the design* is sampled after each settle.  The traces
must match value-for-value, cycle-for-cycle, three ways.

Also covered here: ConvergenceError parity on deliberate combinational
loops (both for undeclared components, which take the engines' naive
fallback path, and for declared components, which take the SCC worklist
path), slot-store edge cases (X-valued slots, ``invalidate()`` after
finalize, ``declare_volatile``), engine selection plumbing, and
replaying the shipped examples under every engine via the
``REPRO_SIM_ENGINE`` environment variable.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import runpy
import sys

import pytest

from repro.apps.md5 import MD5Hasher
from repro.apps.processor import Processor, programs
from repro.core import FullMEB, ReducedMEB, StructuralFullMEB
from repro.elastic import (
    Branch,
    EagerFork,
    ElasticBuffer,
    ElasticChannel,
    FunctionUnit,
    Join,
    LatchElasticBuffer,
    LazyFork,
    Merge,
    Sink,
    Source,
    VariableLatencyUnit,
)
from repro.elastic.buffer import HalfBuffer
from repro.elastic.endpoints import duty_cycle, stall_window
from repro.kernel import Component, ConvergenceError, Simulator, build
from repro.kernel.values import same_value
from repro.netlist import DataflowGraph, elaborate

from tests.conftest import make_mt_pipeline

ENGINES = ("naive", "event", "compiled")

#: The trace/application differentials additionally pin the compiled
#: engine with its tick-phase compilation force-disabled, so the legacy
#: per-component capture/commit dispatch stays cycle-identical to the
#: SeqStore plans (and to the other engines).
TICK_VARIANTS = ENGINES + ("compiled-noseq",)


@contextlib.contextmanager
def engine_context(variant: str):
    """Yield the engine name for *variant*, pinning env for noseq.

    ``Simulator`` reads ``REPRO_SIM_SEQ`` at construction time, so the
    variable only needs to be set while the factory builds the sim.
    """
    if variant != "compiled-noseq":
        yield variant
        return
    old = os.environ.get("REPRO_SIM_SEQ")
    os.environ["REPRO_SIM_SEQ"] = "0"
    try:
        yield "compiled"
    finally:
        if old is None:
            del os.environ["REPRO_SIM_SEQ"]
        else:
            os.environ["REPRO_SIM_SEQ"] = old


def run_and_trace(sim: Simulator, cycles: int) -> list[dict[str, object]]:
    """Step *cycles* times, sampling every signal after each settle."""
    signals = sim.signals
    rows: list[dict[str, object]] = []
    sim.add_observer(
        lambda s: rows.append({sig.name: sig.value for sig in signals})
    )
    sim.run(cycles=cycles)
    return rows


def assert_identical_traces(factory, cycles: int) -> None:
    """Build the network once per engine variant and compare traces."""
    traces = {}
    for variant in TICK_VARIANTS:
        with engine_context(variant) as engine:
            sim = factory(engine)
        traces[variant] = run_and_trace(sim, cycles)
    naive = traces["naive"]
    assert len(naive) == cycles
    for engine in TICK_VARIANTS[1:]:
        other = traces[engine]
        assert len(other) == cycles
        for cycle, (rown, rowe) in enumerate(zip(naive, other)):
            assert rown.keys() == rowe.keys()
            diffs = [
                (name, rown[name], rowe[name])
                for name in rown
                if not same_value(rown[name], rowe[name])
            ]
            assert not diffs, (
                f"cycle {cycle}: naive vs {engine} diverge on {diffs[:8]}"
            )


# ----------------------------------------------------------------------
# single-thread elastic networks
# ----------------------------------------------------------------------

class TestSingleThreadNetworks:
    def test_buffer_chain_mixed_kinds(self):
        def factory(engine):
            chans = [ElasticChannel(f"c{i}", width=16) for i in range(5)]
            src = Source("src", chans[0], items=list(range(30)),
                         pattern=duty_cycle(3, 4))
            b0 = ElasticBuffer("eb", chans[0], chans[1])
            b1 = HalfBuffer("hb", chans[1], chans[2])
            b2 = LatchElasticBuffer("leb", chans[2], chans[3])
            fu = FunctionUnit("fu", chans[3], chans[4], fn=lambda x: x + 100)
            snk = Sink("snk", chans[4], pattern=stall_window(10, 20))
            return build(*chans, src, b0, b1, b2, fu, snk, engine=engine)

        assert_identical_traces(factory, 80)

    def test_fork_join_diamond_with_vlu(self):
        def factory(engine):
            c = {n: ElasticChannel(n, width=16)
                 for n in ("in", "a", "b", "a2", "b2", "j", "out")}
            src = Source("src", c["in"], items=list(range(20)))
            fork = LazyFork("fork", c["in"], [c["a"], c["b"]])
            fa = FunctionUnit("fa", c["a"], c["a2"], fn=lambda x: x * 3)
            vlu = VariableLatencyUnit(
                "vlu", c["b"], c["b2"], fn=lambda x: x + 7,
                latency=lambda d, k: 1 + (k % 3),
            )
            join = Join("join", [c["a2"], c["b2"]], c["j"])
            buf = ElasticBuffer("buf", c["j"], c["out"])
            snk = Sink("snk", c["out"], pattern=duty_cycle(2, 3))
            return build(*c.values(), src, fork, fa, vlu, join, buf, snk,
                         engine=engine)

        assert_identical_traces(factory, 120)

    def test_eager_fork_branch_merge(self):
        def factory(engine):
            c = {n: ElasticChannel(n, width=16)
                 for n in ("in", "a", "b", "t", "f", "m", "out")}
            src = Source("src", c["in"], items=list(range(24)))
            fork = EagerFork("fork", c["in"], [c["a"], c["b"]])
            sa = Sink("sa", c["a"], pattern=duty_cycle(1, 2))
            br = Branch("br", c["b"], [c["t"], c["f"]],
                        selector=lambda x: x % 2)
            mg = Merge("mg", [c["t"], c["f"]], c["m"], strict=False)
            buf = ElasticBuffer("buf", c["m"], c["out"])
            snk = Sink("snk", c["out"])
            return build(*c.values(), src, fork, sa, br, mg, buf, snk,
                         engine=engine)

        assert_identical_traces(factory, 100)


# ----------------------------------------------------------------------
# multithreaded networks
# ----------------------------------------------------------------------

class TestMultithreadedNetworks:
    @pytest.mark.parametrize("meb_cls", [FullMEB, ReducedMEB])
    def test_mt_pipeline_with_stalls(self, meb_cls):
        def factory(engine):
            items = [list(range(t, t + 12)) for t in range(4)]
            sim, _src, _snk, _mebs, _mons = make_mt_pipeline(
                meb_cls, threads=4, items=items, n_stages=3,
                sink_patterns=[None, stall_window(5, 15), None,
                               duty_cycle(1, 2)],
                engine=engine,
            )
            return sim

        assert_identical_traces(factory, 90)

    def test_structural_full_meb(self):
        def factory(engine):
            from repro.core import MTChannel, MTSink, MTSource
            up = MTChannel("up", threads=3, width=16)
            down = MTChannel("down", threads=3, width=16)
            src = MTSource("src", up, items=[[1, 2], [3, 4], [5, 6]])
            meb = StructuralFullMEB("smeb", up, down)
            snk = MTSink("snk", down, patterns=[duty_cycle(2, 3)] * 3)
            return build(up, down, src, meb, snk, engine=engine)

        assert_identical_traces(factory, 60)

    def test_elaborated_graph_all_operators(self):
        def graph():
            g = DataflowGraph("diff")
            g.source("src", items=[[3, 5, 8, 13], [21, 34, 55, 89]])
            g.buffer("b0")
            g.fork("fk", n_outputs=2)
            g.op("double", fn=lambda x: x * 2)
            g.buffer("b1")
            g.vlu("slow", fn=lambda x: x + 1, latency=2)
            g.buffer("b2")
            g.join("jn", n_inputs=2)
            g.buffer("b3")
            g.sink("snk")
            g.connect("src", "b0")
            g.connect("b0", "fk")
            g.connect("fk", "double", src_port=0)
            g.connect("fk", "slow", src_port=1)
            g.connect("double", "b1")
            g.connect("slow", "b2")
            g.connect("b1", "jn", dst_port=0)
            g.connect("b2", "jn", dst_port=1)
            g.connect("jn", "b3")
            g.connect("b3", "snk")
            return g

        for threads in (1, 2):
            def factory(engine, threads=threads):
                return elaborate(graph(), threads=threads,
                                 engine=engine).sim

            assert_identical_traces(factory, 70)


# ----------------------------------------------------------------------
# full applications
# ----------------------------------------------------------------------

class TestApplications:
    def test_md5_identical_digests_and_cycles(self):
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                h = MD5Hasher(threads=4, engine=engine)
            digests = h.hash_batch([b"alpha", b"beta", b"gamma", b"delta"])
            results[variant] = (digests, h.circuit.sim.cycle,
                                h.circuit.round_counter)
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant

    def test_md5_pipelined_rounds_identical(self):
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                h = MD5Hasher(threads=4, round_stages=4, engine=engine)
            digests = h.hash_batch([b"pipelined", b"round"])
            results[variant] = (digests, h.circuit.sim.cycle)
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant

    def test_processor_identical_execution(self):
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                cpu = Processor(threads=4, meb="reduced", engine=engine)
            mix = programs.standard_mix()
            for t in range(4):
                cpu.load_program(t, mix[t % len(mix)].source)
            stats = cpu.run()
            regs = [[cpu.reg(t, r) for r in range(8)] for t in range(4)]
            results[variant] = (stats.cycles, tuple(stats.retired), regs)
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant

    def test_processor_full_meb_identical(self):
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                cpu = Processor(threads=2, meb="full", engine=engine)
            cpu.load_program(0, programs.standard_mix()[0].source)
            cpu.load_program(1, programs.standard_mix()[1].source)
            stats = cpu.run()
            results[variant] = (stats.cycles, tuple(stats.retired))
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant

    @pytest.mark.parametrize(
        "program", programs.standard_mix()[:5], ids=lambda p: p.name
    )
    def test_processor_each_program_identical(self, program):
        """Per-program RunStats and architectural state pinned across
        naive/event/compiled/compiled-noseq (the slot-ported stages must
        be cycle-exact for every instruction class, not just the mix)."""
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                cpu = Processor(threads=1, meb="reduced", engine=engine)
            cpu.load_program(0, program.source)
            stats = cpu.run()
            results[variant] = (
                stats.cycles,
                tuple(stats.retired),
                cpu.regfile.dump(0),
                cpu.dmem.dump(0),
            )
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant

    def test_processor_memory_programs_identical(self):
        """memcpy + dot-product: loads, stores and the long-latency
        multiplier, with a pre-seeded data-memory image, across all
        engine variants."""
        memcpy_prog, memcpy_image = programs.memcpy([7, 11, 13, 17])
        dot_prog, dot_image = programs.dot_product([3, 5, 7], [2, 4, 6])
        results = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                cpu = Processor(threads=2, meb="reduced", engine=engine)
            for addr, value in memcpy_image.items():
                cpu.dmem.write(0, addr, value)
            for addr, value in dot_image.items():
                cpu.dmem.write(1, addr, value)
            cpu.load_program(0, memcpy_prog.source)
            cpu.load_program(1, dot_prog.source)
            stats = cpu.run()
            results[variant] = (
                stats.cycles,
                tuple(stats.retired),
                cpu.dmem.dump(0),
                cpu.dmem.dump(1),
            )
        for variant in TICK_VARIANTS[1:]:
            assert results["naive"] == results[variant], variant
        kind, where = memcpy_prog.check
        assert results["naive"][2][where] == memcpy_prog.expected
        kind, where = dot_prog.check
        assert results["naive"][3][where] == dot_prog.expected


# ----------------------------------------------------------------------
# convergence-error parity
# ----------------------------------------------------------------------

class _UndeclaredOscillator(Component):
    """Combinational loop with no declarations (engine fallback path)."""

    def __init__(self, name):
        super().__init__(name)
        self.out = self.output("out", init=False)

    def combinational(self):
        self.out.set(not self.out.value)


class _DeclaredOscillator(Component):
    """Combinational loop *with* declarations (SCC worklist path)."""

    def __init__(self, name):
        super().__init__(name)
        self.out = self.output("out", init=False)
        self.declare_reads(self.out)

    def combinational(self):
        self.out.set(not self.out.value)


class TestConvergenceParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "osc_cls", [_UndeclaredOscillator, _DeclaredOscillator]
    )
    def test_combinational_loop_raises(self, engine, osc_cls):
        if engine == "naive" and osc_cls is _DeclaredOscillator:
            pytest.skip("declarations are ignored by the naive engine")
        sim = build(osc_cls("osc"), max_settle_iterations=7, engine=engine)
        with pytest.raises(ConvergenceError) as exc:
            sim.settle()
        assert exc.value.iterations == 7
        assert "osc.out" in exc.value.unstable

    def test_cross_component_declared_loop_raises(self):
        # A ring of an odd number of inverters has no stable point; the
        # whole ring forms one SCC whose local worklist must give up.
        class Inverter(Component):
            def __init__(self, name):
                super().__init__(name)
                self.src = None
                self.out = self.output("out", init=False)

            def late_bind(self, sig):
                self.src = sig
                self.declare_reads(sig)

            def combinational(self):
                self.out.set(not self.src.value)

        ring = [Inverter(f"inv{i}") for i in range(3)]
        for i, inv in enumerate(ring):
            inv.late_bind(ring[(i + 1) % 3].out)
        sim = build(*ring, max_settle_iterations=9, engine="event")
        with pytest.raises(ConvergenceError):
            sim.settle()

    def test_cross_component_declared_loop_raises_compiled(self):
        class Inverter(Component):
            def __init__(self, name):
                super().__init__(name)
                self.src = None
                self.out = self.output("out", init=False)

            def late_bind(self, sig):
                self.src = sig
                self.declare_reads(sig)

            def combinational(self):
                self.out.set(not self.src.value)

        ring = [Inverter(f"inv{i}") for i in range(3)]
        for i, inv in enumerate(ring):
            inv.late_bind(ring[(i + 1) % 3].out)
        sim = build(*ring, max_settle_iterations=9, engine="compiled")
        with pytest.raises(ConvergenceError) as exc:
            sim.settle()
        assert any("inv" in name for name in exc.value.unstable)


# ----------------------------------------------------------------------
# slot-store edge cases (compiled engine)
# ----------------------------------------------------------------------

class TestSlotStoreEdgeCases:
    def make_pipeline(self, engine="compiled"):
        items = [list(range(t, t + 6)) for t in range(3)]
        return make_mt_pipeline(
            FullMEB, threads=3, items=items, n_stages=2, engine=engine,
        )

    def test_store_backs_every_signal(self):
        sim, _src, _snk, _mebs, _mons = self.make_pipeline()
        store = sim.store
        assert len(store) == len(sim.signals)
        for sig in sim.signals:
            assert sig._store is store.values
            assert store.values[store.slot(sig)] is sig.value

    def test_channel_blocks_are_packed(self):
        sim, _src, _snk, mebs, _mons = self.make_pipeline()
        store = sim.store
        channel = mebs[0].down
        blk = store.range_of(channel.valid)
        assert blk is not None and blk[1] - blk[0] == channel.threads
        assert store.range_of(channel.ready) is not None
        # Non-contiguous selections are rejected, not approximated.
        scattered = [channel.valid[0], channel.ready[0]]
        assert store.range_of(scattered) is None
        assert store.range_of([]) is None

    def test_x_valued_slot_round_trip(self):
        from repro.kernel.values import X, is_x

        sim, _src, _snk, mebs, _mons = self.make_pipeline()
        store = sim.store
        meb = mebs[0]
        data = meb.down.data
        slot = store.slot(data)
        sim.run(cycles=3)
        # Poke X through the Signal API: the raw slot must see it (the
        # Signal and the store index the same cell) ...
        data.set(X)
        assert is_x(store.values[slot])
        assert store.values[slot] is data.value
        # ... and once the driver is rescheduled, the next settle
        # recomputes the slot from the MEB's storage.
        meb.invalidate()
        sim.settle()
        if any(meb.occupancy(t) for t in range(meb.threads)):
            assert not is_x(data.value)

    def test_x_on_handshake_wire_raises_like_scalar_path(self):
        from repro.kernel.values import X

        sim, _src, _snk, mebs, _mons = self.make_pipeline()
        sim.run(cycles=2)
        # An X forced onto a ready wire must blow up the batched read
        # exactly like the scalar as_bool path would.
        mebs[0].down.ready[1].set(X)
        with pytest.raises(ValueError):
            mebs[0].down.readies()

    def test_invalidate_after_finalize_reschedules(self):
        sim, src, snk, _mebs, _mons = self.make_pipeline()
        sim.run(cycles=40)
        drained = snk.count
        assert src.exhausted
        # Out-of-band mutation + invalidate() must wake the source even
        # though no declared input changed and its commit reported
        # nothing: push() calls invalidate() internally.
        src.push(0, 99)
        sim.run(cycles=10)
        assert snk.count == drained + 1
        assert snk.values_for(0)[-1] == 99

    def test_declare_volatile_reevaluated_every_settle(self):
        from repro.kernel import Signal

        class CycleCounter(Component):
            """Output depends on out-of-graph state (an eval counter)."""

            def __init__(self, name):
                super().__init__(name)
                self.out = self.output("out", width=8, init=0)
                self.evals = 0
                self.declare_reads()
                self.declare_volatile()

            def combinational(self):
                self.evals += 1
                self.out.set(self.evals)

        comp = CycleCounter("vol")
        sim = build(comp, engine="compiled")
        sim.run(cycles=1)
        base = comp.evals
        assert base >= 1
        sim.run(cycles=5)
        # One evaluation per settle even though no declared input ever
        # changes and commit never reports anything.
        assert comp.evals == base + 5
        assert isinstance(sim.signal_by_name("vol.out"), Signal)

    def test_poked_wire_reschedules_readers(self):
        sim, _src, snk, mebs, _mons = self.make_pipeline()
        sim.run(cycles=4)
        # Force all readies low from outside any settle: the writes land
        # in the slot store, mark the reading MEB stale, and — because
        # the stateless sink is (correctly) not rescheduled — block any
        # further transfer on that channel.
        meb = mebs[-1]
        for sig in meb.down.ready:
            sig.set(False)
        count0 = snk.count
        sim.step()
        assert snk.count == count0


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------

class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(engine="quantum")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "naive")
        assert Simulator().engine_name == "naive"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        assert Simulator().engine_name == "compiled"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert Simulator().engine_name == "compiled"

    def test_explicit_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "naive")
        assert Simulator(engine="event").engine_name == "event"
        assert Simulator(engine="compiled").engine_name == "compiled"


# ----------------------------------------------------------------------
# shipped examples under every engine
# ----------------------------------------------------------------------

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


@pytest.mark.parametrize(
    "example", ["quickstart.py", "branch_merge_loop.py", "barrier_sync.py"]
)
def test_example_output_engine_invariant(example, capsys, monkeypatch):
    outputs = {}
    for variant in TICK_VARIANTS:
        with engine_context(variant) as engine:
            monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
            argv = sys.argv
            try:
                sys.argv = [str(EXAMPLES_DIR / example)]
                runpy.run_path(str(EXAMPLES_DIR / example),
                               run_name="__main__")
            finally:
                sys.argv = argv
        outputs[variant] = capsys.readouterr().out
    for variant in TICK_VARIANTS[1:]:
        assert outputs["naive"] == outputs[variant], variant


# ----------------------------------------------------------------------
# snapshot/fork differential: rewound trajectories are engine-invariant
# ----------------------------------------------------------------------

class TestForkDifferential:
    """``fork()`` mid-run must be unobservable — under every engine.

    For each engine variant (including the compiled engine with the
    tick compilation disabled), a run that snapshots mid-flight and a
    rewound re-run of the same stretch must produce the state an
    uninterrupted run produces; and because the engines are themselves
    cycle-identical, the fingerprints must also agree *across* engines.
    """

    @staticmethod
    def _factory(engine):
        items = [list(range(12)) for _ in range(4)]
        return make_mt_pipeline(
            ReducedMEB, threads=4, items=items, n_stages=3,
            sink_patterns=[None, duty_cycle(1, 3), None, duty_cycle(2, 5)],
            engine=engine,
        )

    @staticmethod
    def _fingerprint(sim, sink, monitor):
        sim.settle()
        return (
            sim.cycle,
            tuple(sink.received),
            tuple(monitor.transfers),
            monitor.cycles_observed,
            tuple(sig.value for sig in sim.signals),
        )

    def test_fork_mid_run_equals_uninterrupted(self):
        fingerprints = {}
        for variant in TICK_VARIANTS:
            with engine_context(variant) as engine:
                sim, _src, sink, _mebs, mons = self._factory(engine)
            sim.run(cycles=13)
            snap = sim.snapshot()
            sim.run(cycles=50)
            interrupted = self._fingerprint(sim, sink, mons[-1])

            sim.restore(snap)
            assert sim.cycle == 13
            sim.run(cycles=50)
            rewound = self._fingerprint(sim, sink, mons[-1])
            assert rewound == interrupted, variant

            with engine_context(variant) as engine:
                ref_sim, _s, ref_sink, _m, ref_mons = self._factory(engine)
            ref_sim.run(cycles=63)
            reference = self._fingerprint(ref_sim, ref_sink, ref_mons[-1])
            assert reference == interrupted, variant
            fingerprints[variant] = interrupted
        for variant in TICK_VARIANTS[1:]:
            assert fingerprints[variant] == fingerprints["naive"], variant
