"""Tests for elastic function units and variable-latency units."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic import (
    ChannelMonitor,
    ElasticBuffer,
    ElasticChannel,
    FunctionUnit,
    Sink,
    Source,
    VariableLatencyUnit,
)
from repro.kernel import SimulationError, build


def make_vlu(items, latency, sink_pattern=None):
    inp = ElasticChannel("inp", width=8)
    out = ElasticChannel("out", width=8)
    src = Source("src", inp, items=items)
    vlu = VariableLatencyUnit("vlu", inp, out, fn=lambda d: d + 100,
                              latency=latency)
    sink = Sink("snk", out, pattern=sink_pattern)
    sim = build(inp, out, src, vlu, sink)
    return sim, sink, vlu


class TestFunctionUnit:
    def test_combinational_transform(self):
        inp = ElasticChannel("inp", width=8)
        out = ElasticChannel("out", width=8)
        src = Source("src", inp, items=[1, 2, 3])
        fu = FunctionUnit("fu", inp, out, fn=lambda d: d * 10)
        sink = Sink("snk", out)
        sim = build(inp, out, src, fu, sink)
        sim.run(until=lambda s: sink.count == 3, max_cycles=20)
        assert sink.values() == [10, 20, 30]

    def test_zero_latency(self):
        inp = ElasticChannel("inp", width=8)
        out = ElasticChannel("out", width=8)
        src = Source("src", inp, items=[7])
        fu = FunctionUnit("fu", inp, out, fn=lambda d: d)
        sink = Sink("snk", out)
        sim = build(inp, out, src, fu, sink)
        sim.run(until=lambda s: sink.count == 1, max_cycles=10)
        assert sink.arrival_cycles() == [0]

    def test_backpressure_passes_through(self):
        inp = ElasticChannel("inp", width=8)
        out = ElasticChannel("out", width=8)
        src = Source("src", inp, items=[1, 2])
        fu = FunctionUnit("fu", inp, out, fn=lambda d: d)
        sink = Sink("snk", out, pattern=lambda c: c >= 3)
        sim = build(inp, out, src, fu, sink)
        sim.run(until=lambda s: sink.count == 2, max_cycles=20)
        assert sink.arrival_cycles() == [3, 4]


class TestVariableLatencyUnit:
    def test_fixed_latency_timing(self):
        sim, sink, _vlu = make_vlu([5], latency=3)
        sim.run(until=lambda s: sink.count == 1, max_cycles=20)
        # Accepted at cycle 0, result visible at cycle 3.
        assert sink.received == [(3, 105)]

    def test_latency_one_gives_one_item_every_two_cycles(self):
        sim, sink, _vlu = make_vlu([1, 2, 3], latency=1)
        sim.run(until=lambda s: sink.count == 3, max_cycles=30)
        # Single occupancy: accept at t, deliver at t+1, accept next at t+2.
        assert sink.arrival_cycles() == [1, 3, 5]

    def test_callable_latency_policy(self):
        sim, sink, _vlu = make_vlu([1, 2], latency=lambda d, k: d)
        sim.run(until=lambda s: sink.count == 2, max_cycles=30)
        assert sink.values() == [101, 102]

    def test_iterable_latency_policy(self):
        sim, sink, _vlu = make_vlu([1, 2, 3], latency=iter([1, 4, 2]))
        sim.run(until=lambda s: sink.count == 3, max_cycles=40)
        assert sink.values() == [101, 102, 103]

    def test_latency_iterable_exhaustion_raises(self):
        sim, _sink, _vlu = make_vlu([1, 2, 3], latency=iter([1]))
        with pytest.raises(SimulationError):
            sim.run(cycles=20)

    def test_zero_latency_rejected(self):
        sim, _sink, _vlu = make_vlu([1], latency=0)
        with pytest.raises(SimulationError):
            sim.run(cycles=5)

    def test_result_held_until_taken(self):
        sim, sink, vlu = make_vlu([9], latency=2,
                                  sink_pattern=lambda c: c >= 8)
        sim.run(until=lambda s: sink.count == 1, max_cycles=20)
        assert sink.received == [(8, 109)]

    def test_not_ready_while_busy(self):
        sim, _sink, vlu = make_vlu([1, 2], latency=5)
        sim.run(cycles=3)
        sim.settle()
        assert vlu.inp.ready.value is False


class TestElasticToleratesVariableLatency:
    """Paper §I: elastic systems tolerate variable-latency computation.

    A pipeline with a variable-latency middle unit must still deliver all
    tokens, in order, with no protocol violations."""

    def test_pipeline_with_variable_latency_middle(self):
        c0 = ElasticChannel("c0", width=8)
        c1 = ElasticChannel("c1", width=8)
        c2 = ElasticChannel("c2", width=8)
        c3 = ElasticChannel("c3", width=8)
        src = Source("src", c0, items=list(range(6)))
        eb_in = ElasticBuffer("ebi", c0, c1)
        vlu = VariableLatencyUnit("vlu", c1, c2, fn=lambda d: d,
                                  latency=lambda d, k: 1 + (k % 3))
        eb_out = ElasticBuffer("ebo", c2, c3)
        mon = ChannelMonitor("mon", c3)
        sink = Sink("snk", c3)
        sim = build(c0, c1, c2, c3, src, eb_in, vlu, eb_out, mon, sink)
        sim.run(until=lambda s: sink.count == 6, max_cycles=100)
        assert sink.values() == list(range(6))
        assert mon.transfer_count == 6


@settings(max_examples=40, deadline=None)
@given(
    latencies=st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                       max_size=10),
    sink_bits=st.lists(st.booleans(), min_size=1, max_size=6),
)
def test_variable_latency_conserves_tokens(latencies, sink_bits):
    """Property: any latency schedule delivers every token exactly once."""
    n = len(latencies)
    sim, sink, _vlu = make_vlu(list(range(n)), latency=iter(latencies),
                               sink_pattern=sink_bits + [True])
    sim.run(cycles=sum(latencies) * (len(sink_bits) + 2) + 8 * n + 20)
    assert sink.values() == [100 + i for i in range(n)]
