"""Validation of the structural Fig.-4 MEB against the flat FullMEB.

The flat :class:`FullMEB` is a behavioural model; the
:class:`StructuralFullMEB` is the literal figure (S elastic buffers +
demux + arbiter + mux).  If the two ever disagree on any observable
transfer, one of them misreads the paper — the property test below
drives both with identical randomized traffic and compares cycle-stamped
per-thread transfer streams exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FullMEB, MTChannel, MTMonitor, MTSink, MTSource
from repro.core.structural import StructuralFullMEB
from repro.kernel import SimulationError, build


def run_pipeline(meb_cls, streams, sink_bits, n_stages=2, cycles=200):
    threads = len(streams)
    chans = [
        MTChannel(f"ch{i}", threads=threads, width=16)
        for i in range(n_stages + 1)
    ]
    src = MTSource("src", chans[0], items=streams)
    mebs = [
        meb_cls(f"meb{i}", chans[i], chans[i + 1])
        for i in range(n_stages)
    ]
    sink = MTSink("snk", chans[-1], patterns=[sink_bits] * threads)
    mon = MTMonitor("mon", chans[-1])
    sim = build(*chans, src, *mebs, sink, mon)
    sim.run(cycles=cycles)
    return mon, mebs


class TestStructuralBasics:
    def test_delivers_in_order(self):
        mon, _ = run_pipeline(
            StructuralFullMEB, [[1, 2, 3], [10, 20]], sink_bits=[True]
        )
        assert mon.values_for(0) == [1, 2, 3]
        assert mon.values_for(1) == [10, 20]

    def test_occupancy_interface(self):
        mon, mebs = run_pipeline(
            StructuralFullMEB, [[1, 2, 3], []], sink_bits=[False],
            n_stages=1, cycles=10,
        )
        assert mebs[0].occupancy(0) == 2
        assert mebs[0].thread_state(0) == "FULL"
        assert mebs[0].contents(0) == [1, 2]
        assert mebs[0].total_occupancy() == 2
        assert mebs[0].total_slots == 4

    def test_thread_count_mismatch_rejected(self):
        a = MTChannel("a", threads=2)
        b = MTChannel("b", threads=3)
        with pytest.raises(SimulationError):
            StructuralFullMEB("m", a, b)

    def test_lone_thread_full_throughput(self):
        mon, _ = run_pipeline(
            StructuralFullMEB, [list(range(12)), []], sink_bits=[True],
        )
        cycles = mon.transfer_cycles(0)
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert all(g == 1 for g in gaps)


@settings(max_examples=40, deadline=None)
@given(
    streams=st.lists(
        st.lists(st.integers(0, 99), min_size=0, max_size=8),
        min_size=2, max_size=3,
    ),
    sink_bits=st.lists(st.booleans(), min_size=1, max_size=6),
)
def test_structural_equals_behavioural_cycle_exact(streams, sink_bits):
    """Property: flat FullMEB and Fig.-4 structural MEB produce identical
    cycle-stamped transfer streams under arbitrary traffic."""
    sink_bits = sink_bits + [True]
    results = {}
    for cls in (FullMEB, StructuralFullMEB):
        mon, _ = run_pipeline(cls, streams, sink_bits, cycles=150)
        results[cls.__name__] = list(mon.transfers)
    assert results["FullMEB"] == results["StructuralFullMEB"]


def test_structural_area_close_to_flat():
    """The two models' area inventories agree to first order (same
    storage, same arbiter; small bookkeeping differences allowed)."""
    from repro.cost import AreaModel

    model = AreaModel()
    a1, b1 = MTChannel("a1", threads=8), MTChannel("b1", threads=8)
    a2, b2 = MTChannel("a2", threads=8), MTChannel("b2", threads=8)
    flat = model.component_area(FullMEB("flat", a1, b1)).total_le
    struct = model.component_area(
        StructuralFullMEB("struct", a2, b2)
    ).total_le
    assert abs(flat - struct) / flat < 0.15
    # Same number of storage bits either way.
    flat_ff = model.component_area(FullMEB("flat2",
                                           MTChannel("x", threads=8),
                                           MTChannel("y", threads=8))).ff_bits
    struct_ff = model.component_area(
        StructuralFullMEB("struct2", MTChannel("p", threads=8),
                          MTChannel("q", threads=8))
    ).ff_bits
    assert flat_ff >= 2 * 8 * 32
    assert struct_ff >= 2 * 8 * 32
