"""Tests for the analysis layer: stats, equivalence, figure rendering."""

import pytest

from repro.analysis import (
    OccupancyProbe,
    channel_stats,
    check_token_conservation,
    fairness_index,
    latency_profile,
    per_thread_throughputs,
    render_activity_table,
    render_occupancy_table,
    render_timeline,
    steady_state_window,
    streams_equal,
    thread_letter,
)
from repro.core import FullMEB

from tests.conftest import make_mt_pipeline


def run_simple(n_items=10, threads=2):
    items = [list(range(n_items)) for _ in range(threads)]
    sim, src, sink, mebs, mons = make_mt_pipeline(
        FullMEB, threads=threads, items=items, n_stages=2
    )
    sim.run(cycles=n_items * threads + 20)
    return sim, src, sink, mebs, mons


class TestChannelStats:
    def test_counts_and_throughput(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=10)
        stats = channel_stats(mons[-1], 0, 40)
        assert stats.transfers == 20
        assert stats.thread(0).transfers == 10
        assert stats.thread(1).transfers == 10
        assert stats.utilization == pytest.approx(0.5)

    def test_empty_window_rejected(self):
        _sim, _src, _snk, _mebs, mons = run_simple()
        with pytest.raises(ValueError):
            channel_stats(mons[-1], 5, 5)

    def test_window_bounds_respected(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=10)
        stats = channel_stats(mons[-1], 0, 4)
        assert stats.cycles == 4
        assert stats.transfers <= 4

    def test_first_last_cycles(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=5)
        stats = channel_stats(mons[-1])
        ts = stats.thread(0)
        assert ts.first_cycle is not None
        assert ts.last_cycle >= ts.first_cycle

    def test_idle_thread_stats(self):
        sim, _src, sink, _mebs, mons = make_mt_pipeline(
            FullMEB, threads=2, items=[[1, 2], []], n_stages=1
        )
        sim.run(cycles=10)
        stats = channel_stats(mons[-1])
        assert stats.thread(1).transfers == 0
        assert stats.thread(1).first_cycle is None


class TestSteadyStateWindow:
    def test_window_excludes_head_and_tail(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=20)
        start, end = steady_state_window(mons[-1], warmup=5, drain=3)
        assert start == 5
        assert end > start

    def test_empty_monitor(self):
        sim, _src, _snk, _mebs, mons = make_mt_pipeline(
            FullMEB, threads=2, items=[[], []], n_stages=1
        )
        sim.run(cycles=5)
        start, end = steady_state_window(mons[-1])
        assert end > start


class TestFairness:
    def test_equal_shares_score_one(self):
        assert fairness_index([0.25, 0.25, 0.25, 0.25]) == pytest.approx(1.0)

    def test_monopoly_scores_1_over_n(self):
        assert fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert fairness_index([0.0, 0.0]) == 0.0

    def test_round_robin_pipeline_is_fair(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=20, threads=2)
        tps = per_thread_throughputs(mons[-1], 4, 30)
        assert fairness_index(tps) > 0.98


class TestEquivalence:
    def test_streams_equal(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=6)
        assert streams_equal(mons[-1], [list(range(6)), list(range(6))])
        assert not streams_equal(mons[-1], [list(range(6)), [9, 9]])

    def test_streams_equal_shape_check(self):
        _sim, _src, _snk, _mebs, mons = run_simple()
        with pytest.raises(ValueError):
            streams_equal(mons[-1], [[1]])

    def test_conservation_ok(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=8)
        report = check_token_conservation(mons[0], mons[-1])
        assert report.ok
        assert bool(report)
        assert report.missing == ()

    def test_conservation_detects_in_flight(self):
        sim, _src, _snk, _mebs, mons = make_mt_pipeline(
            FullMEB, threads=2, items=[list(range(8)), []], n_stages=2,
            sink_patterns=[lambda c: False, None],
        )
        sim.run(cycles=20)
        strict = check_token_conservation(mons[0], mons[-1])
        assert not strict.ok
        relaxed = check_token_conservation(mons[0], mons[-1],
                                           allow_in_flight=4)
        assert relaxed.ok

    def test_latency_profile(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=6)
        lats = latency_profile(mons[0], mons[-1], thread=0)
        assert len(lats) == 6
        assert all(lat >= 2 for lat in lats)  # 2 MEB stages minimum


class TestRendering:
    def test_thread_letter(self):
        assert thread_letter(0) == "A"
        assert thread_letter(1) == "B"

    def test_activity_table_contains_items(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=4)
        art = render_activity_table(
            {"in": mons[0], "out": mons[-1]}, start=0, end=10
        )
        assert "in" in art and "out" in art
        assert "0" in art

    def test_activity_table_marks_idle(self):
        sim, _src, _snk, _mebs, mons = make_mt_pipeline(
            FullMEB, threads=2, items=[[], []], n_stages=1
        )
        sim.run(cycles=3)
        art = render_activity_table({"ch": mons[0]})
        assert "-" in art

    def test_activity_table_needs_monitor(self):
        with pytest.raises(ValueError):
            render_activity_table({})

    def test_timeline(self):
        art = render_timeline("unit", ["F1", None, "F2"])
        assert "F1" in art and "-" in art

    def test_occupancy_table(self):
        art = render_occupancy_table({"meb0": [0, 1, 2, 2]})
        assert "meb0" in art
        assert "2" in art

    def test_occupancy_table_needs_data(self):
        with pytest.raises(ValueError):
            render_occupancy_table({})

    def test_occupancy_probe(self):
        sim, _src, _snk, mebs, _mons = make_mt_pipeline(
            FullMEB, threads=2, items=[[1, 2, 3], []], n_stages=1,
            sink_patterns=[lambda c: False] * 2,
        )
        probe = OccupancyProbe(lambda: mebs[0].total_occupancy())
        sim.add_observer(probe)
        sim.run(cycles=6)
        assert len(probe.series) == 6
        assert probe.series[-1] == 2


class TestChannelStatsColumnar:
    """The columnar rewrite of channel_stats (one pass over the monitor
    transfer columns) and its window-bound contract."""

    def test_end_beyond_observed_rejected(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=5)
        observed = mons[-1].cycles_observed
        with pytest.raises(ValueError, match="beyond the"):
            channel_stats(mons[-1], 0, observed + 1)
        # The full observed window itself is fine.
        stats = channel_stats(mons[-1], 0, observed)
        assert stats.cycles == observed

    def test_matches_rowwise_rescan(self):
        """The one-pass fold equals the original per-thread rescan."""
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=8, threads=3)
        monitor = mons[-1]
        start, end = 3, monitor.cycles_observed - 2
        stats = channel_stats(monitor, start, end)
        transfers = monitor.transfers
        for t in range(monitor.threads):
            cycles = [
                c for c, th, _d in transfers if th == t and start <= c < end
            ]
            ts = stats.thread(t)
            assert ts.transfers == len(cycles)
            assert ts.first_cycle == (min(cycles) if cycles else None)
            assert ts.last_cycle == (max(cycles) if cycles else None)

    def test_transfer_columns_are_live_views(self):
        _sim, _src, _snk, _mebs, mons = run_simple(n_items=4)
        monitor = mons[-1]
        cycles, threads = monitor.transfer_columns()
        assert len(cycles) == len(threads) == monitor.transfer_count()
        assert list(zip(cycles, threads)) == [
            (c, t) for c, t, _d in monitor.transfers
        ]
        # Ascending cycle order is what first/last-cycle folding relies on.
        assert cycles == sorted(cycles)

    def test_steady_window_clamped_to_short_runs(self):
        """A run shorter than the warmup must still yield a usable
        window (regression: the unclamped window tripped the new
        out-of-bounds check in channel_stats)."""
        items = [[0], [1]]
        sim, _src, sink, _mebs, mons = make_mt_pipeline(
            FullMEB, threads=2, items=items, n_stages=2
        )
        sim.run(until=lambda s: sink.count == 2, max_cycles=100)
        monitor = mons[-1]
        assert monitor.cycles_observed < 8
        start, end = steady_state_window(monitor, warmup=6, drain=4)
        assert 0 <= start < end <= monitor.cycles_observed
        stats = channel_stats(monitor, start, end)  # must not raise
        assert stats.cycles == end - start
