"""System-level integration: every primitive in one circuit.

A single multithreaded elastic network exercising, simultaneously:
M-Fork, two unbalanced paths (one with a variable-latency unit), M-Join,
a barrier, an M-Branch/M-Merge retry loop, both MEB kinds mixed in one
design, and per-thread sink stalls.  Per-thread token conservation and
value correctness must hold end to end.

Topology::

    src ─► MEB(full) ─► M-Fork ─┬─► MEB(reduced) ────────────┐
                                │                            ▼
                                └─► VLU(var) ─► MEB(full) ─► M-Join
                                                              │
        ┌► out sink ◄─ M-Branch ◄─ Barrier ◄─ MEB(reduced) ◄──┘
        │       │ retry (value needs one more pass)
        │       ▼
        │   M-Merge ◄───────────────────────── (back to join input? no —
        └── the retry loop re-enters before the barrier via M-Merge)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Barrier,
    FullMEB,
    MBranch,
    MFork,
    MJoin,
    MMerge,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
    MTVariableLatencyUnit,
    ReducedMEB,
)
from repro.kernel import build


def build_network(streams, sink_patterns=None, vlu_latency=2):
    """Fork/join diamond into a barrier, then a one-retry branch loop."""
    threads = len(streams)
    ch = lambda n: MTChannel(n, threads=threads, width=32)
    c_in, c_f = ch("c_in"), ch("c_f")
    c_pa, c_pb = ch("c_pa"), ch("c_pb")
    c_qa, c_qb = ch("c_qa"), ch("c_qb")
    c_j, c_jm, c_bar_in, c_bar = ch("c_j"), ch("c_jm"), ch("c_bi"), ch("c_bar")
    c_retry, c_out = ch("c_retry"), ch("c_out")

    # Tokens: (value, pass_count); the branch demands pass_count >= 1.
    src = MTSource("src", c_in, items=[[(v, 0) for v in s] for s in streams])
    meb_in = FullMEB("meb_in", c_in, c_f)
    fork = MFork("fork", c_f, [c_pa, c_pb])
    meb_a = ReducedMEB("meb_a", c_pa, c_qa)
    vlu = MTVariableLatencyUnit(
        "vlu", c_pb, c_qb, fn=lambda t: (t[0] * 2, t[1]),
        latency=vlu_latency,
    )
    join = MJoin(
        "join", [c_qa, c_qb], c_j,
        combine=lambda a, b: (a[0] + b[0], max(a[1], b[1])),  # v + 2v = 3v
    )
    merge = MMerge("merge", [c_j, c_retry], c_jm)
    meb_mid = ReducedMEB("meb_mid", c_jm, c_bar_in)
    barrier = Barrier("barrier", c_bar_in, c_bar)
    branch = MBranch(
        "branch", c_bar, [c_retry, c_out],
        selector=lambda t: 1 if t[1] >= 1 else 0,
        route=lambda t: (t[0], t[1] + 1),
    )
    sink = MTSink("snk", c_out, patterns=sink_patterns)
    mon_in = MTMonitor("mon_in", c_in)
    mon_out = MTMonitor("mon_out", c_out)

    sim = build(
        c_in, c_f, c_pa, c_pb, c_qa, c_qb, c_j, c_jm, c_bar_in, c_bar,
        c_retry, c_out, src, meb_in, fork, meb_a, vlu, join, merge,
        meb_mid, barrier, branch, sink, mon_in, mon_out,
    )
    return sim, sink, mon_in, mon_out, barrier


def expected_for(stream):
    # Each token: forked, joined as v + 2v = 3v, one retry pass bumps the
    # counter, exits with pass_count 2.
    return [(3 * v, 2) for v in stream]


class TestKitchenSink:
    def test_single_token_per_thread(self):
        streams = [[5], [7]]
        sim, sink, _mi, _mo, barrier = build_network(streams)
        sim.run(until=lambda s: sink.count == 2, max_cycles=400)
        assert sink.values_for(0) == expected_for(streams[0])
        assert sink.values_for(1) == expected_for(streams[1])
        # Each token meets the barrier twice (first pass + retry pass).
        assert barrier.releases == 2

    def test_multiple_tokens_sequential_waves(self):
        # The barrier synchronizes per wave, so feed one token per thread
        # per wave (as the MD5 driver does).
        streams = [[5, 6], [7, 8]]
        sim, sink, _mi, _mo, _bar = build_network([[], []])
        src = sim.find("src")
        for wave in range(2):
            src.push(0, (streams[0][wave], 0))
            src.push(1, (streams[1][wave], 0))
            sim.run(until=lambda s, w=wave: sink.count == 2 * (w + 1),
                    max_cycles=400)
        assert sink.values_for(0) == expected_for(streams[0])
        assert sink.values_for(1) == expected_for(streams[1])

    def test_slow_vlu_does_not_break_anything(self):
        streams = [[3], [4]]
        sim, sink, _mi, _mo, _bar = build_network(streams, vlu_latency=7)
        sim.run(until=lambda s: sink.count == 2, max_cycles=600)
        assert sink.values_for(0) == expected_for(streams[0])
        assert sink.values_for(1) == expected_for(streams[1])

    def test_stalled_output_backpressures_cleanly(self):
        streams = [[9], [2]]
        sim, sink, _mi, _mo, _bar = build_network(
            streams, sink_patterns=[lambda c: c >= 40, lambda c: c >= 40]
        )
        sim.run(until=lambda s: sink.count == 2, max_cycles=600)
        assert min(c for c, _t, _d in sink.received) >= 40
        assert sink.values_for(0) == expected_for(streams[0])


@settings(max_examples=15, deadline=None)
@given(
    v0=st.integers(0, 1000),
    v1=st.integers(0, 1000),
    latency=st.integers(1, 5),
)
def test_kitchen_sink_property(v0, v1, latency):
    """Property: arbitrary values and VLU latencies never corrupt the
    fork/join/barrier/retry composition."""
    streams = [[v0], [v1]]
    sim, sink, mon_in, mon_out, _bar = build_network(
        streams, vlu_latency=latency
    )
    sim.run(until=lambda s: sink.count == 2, max_cycles=800)
    assert sink.values_for(0) == [(3 * v0, 2)]
    assert sink.values_for(1) == [(3 * v1, 2)]
    assert mon_in.transfer_count() == 2
    assert mon_out.transfer_count() == 2
