"""The slot-compiled processor pipeline: plans, fusion, snapshots.

PR 5 ported every processor stage (PC/WB unit, variable-latency fetch,
execute and memory units, the sequenced writeback path) onto the slot
architecture: `compile_comb` slice steps for the settle phase and
delta-gated `compile_seq` plans over re-homed SeqStore state for the
tick phase.  These tests cover what the engine differential suite
cannot see from architectural results alone:

* every tick-phase component of the processor runs through a plan and
  the design is fusion-eligible (no volatile/opaque components left);
* settle+tick fusion actually batches idle stretches between program
  phases — the quiescence/batching proof for a workload with idle gaps;
* the re-homed stage state round-trips through snapshot/restore/fork
  mid-program (fork == uninterrupted, restore == rewind).
"""

from __future__ import annotations

import pytest

from repro.apps.processor import Processor, programs

PROGRAMS = {
    "sum": programs.sum_to_n(10),
    "fib": programs.fibonacci(12),
    "gcd": programs.gcd(126, 84),
    "spin": programs.spin(15),
}


@pytest.fixture(autouse=True)
def _seq_enabled(monkeypatch):
    """Pin the seq machinery on regardless of ambient REPRO_SIM_SEQ
    (the differential suite covers the off variant)."""
    monkeypatch.setenv("REPRO_SIM_SEQ", "1")
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)


def make_cpu(engine="compiled", threads=4, meb="reduced"):
    cpu = Processor(threads=threads, meb=meb, engine=engine)
    names = list(PROGRAMS)
    for t in range(threads):
        cpu.load_program(t, PROGRAMS[names[t % len(names)]].source)
    return cpu


def arch_state(cpu):
    return (
        cpu.sim.cycle,
        list(cpu.pc_unit.retired),
        [cpu.regfile.dump(t) for t in range(cpu.threads)],
        [cpu.dmem.dump(t) for t in range(cpu.threads)],
    )


class TestPlanWiring:
    def test_every_tick_component_is_planned(self):
        cpu = make_cpu()
        sim = cpu.sim
        sim.settle()
        seq = sim.seq
        assert seq is not None
        planned = {plan.component for plan in seq.plans}
        for stage in (cpu.pc_unit, cpu.fetch, cpu.execute, cpu.mem,
                      cpu.meb_if, cpu.meb_id, cpu.meb_ex, cpu.meb_mem):
            assert stage in planned, stage.path
        # The whole tick runs through plans and nothing is volatile or
        # opaque: the processor is structurally fusion-eligible.
        assert sim._seq_covers_ticks
        assert not any(c.volatile for c in sim.components)

    def test_stage_state_rehomed_into_seq_store(self):
        cpu = make_cpu()
        sim = cpu.sim
        sim.settle()
        seq = sim.seq
        for stage in (cpu.pc_unit, cpu.fetch, cpu.execute, cpu.mem):
            assert stage._sstore is seq.values, stage.path
        cpu.run_cycles(30)
        # Component accessors and raw seq slots are one storage.
        pc = cpu.pc_unit
        assert pc.retired == seq.values[
            pc._sq + 2 * pc.threads:pc._sq + 3 * pc.threads
        ]
        ex = cpu.execute
        assert ex._busy == seq.values[ex._sq]
        assert ex._owner == seq.values[ex._sq + 1]

    def test_rebuild_preserves_stage_state_mid_program(self):
        cpu_a = make_cpu()
        cpu_b = make_cpu()
        cpu_a.run_cycles(40)
        cpu_b.run_cycles(17)
        busy_before = (cpu_b.execute._busy, cpu_b.mem._busy,
                       list(cpu_b.pc_unit.retired))
        cpu_b.sim.rebuild()  # fresh SeqStore; state re-homed, not reset
        busy_after = (cpu_b.execute._busy, cpu_b.mem._busy,
                      list(cpu_b.pc_unit.retired))
        assert busy_before == busy_after
        cpu_b.run_cycles(23)
        assert arch_state(cpu_a) == arch_state(cpu_b)


class TestFusionWithIdleStretches:
    def run_phases(self, engine, gap=300, phases=2):
        """Program waves separated by idle windows (the fusion shape)."""
        cpu = Processor(threads=3, meb="reduced", engine=engine)
        names = list(PROGRAMS)
        for p in range(phases):
            for t in range(cpu.threads):
                cpu.load_program(t, PROGRAMS[names[(p + t) % len(names)]].source)
            cpu.run()
            cpu.run_cycles(gap)
        return cpu

    def test_fused_phases_match_event_engine(self):
        results = {}
        for engine in ("event", "compiled"):
            cpu = self.run_phases(engine)
            results[engine] = arch_state(cpu)
        assert results["event"] == results["compiled"]

    def test_fusion_actually_batches_idle_windows(self):
        cpu = make_cpu()
        cpu.run()  # all threads halt
        sim = cpu.sim
        assert sim._engine.quiescent
        settles = []
        orig = sim._engine.settle
        sim._engine.settle = lambda cycle: settles.append(cycle) or orig(cycle)
        before = sim.cycle
        cpu.run_cycles(5000)
        assert sim.cycle == before + 5000
        # An until-run stops before ticking its final settled cycle, so
        # the writeback/memory plans confirm idleness in one ordinary
        # cycle; everything after is one fused batch.
        assert len(settles) <= 2
        assert sim._seq_fusible()

    def test_reload_after_idle_window_rearms_the_pipeline(self):
        cpu = make_cpu()
        cpu.run()
        retired = list(cpu.pc_unit.retired)
        cpu.run_cycles(1000)  # fused idle stretch
        cpu.load_program(0, PROGRAMS["sum"].source)
        stats = cpu.run()
        assert stats.retired[0] > retired[0]
        kind, where = PROGRAMS["sum"].check
        assert cpu.mem_word(0, where) == PROGRAMS["sum"].expected


class TestSnapshotMidProgram:
    """Re-homed stage state must round-trip through snapshot/fork."""

    @pytest.mark.parametrize("engine", ["compiled", "event"])
    def test_fork_mid_program_matches_uninterrupted(self, engine):
        cpu = make_cpu(engine=engine)
        cpu.run_cycles(40)  # tokens parked in every stage
        with cpu.sim.fork():
            stats_forked = cpu.run()
            state_forked = arch_state(cpu)
        # The fork rewound to cycle 40; finishing again must replay the
        # exact same trajectory.
        stats_replay = cpu.run()
        assert (stats_replay.cycles, list(stats_replay.retired)) == (
            stats_forked.cycles, list(stats_forked.retired),
        )
        assert arch_state(cpu) == state_forked

    def test_restore_rewinds_in_flight_stage_state(self):
        cpu = make_cpu()
        cpu.run_cycles(25)
        snap = cpu.sim.snapshot()
        mid = (cpu.execute._busy, cpu.execute._owner, cpu.mem._busy,
               list(cpu.pc_unit.retired))
        cpu.run()
        done = arch_state(cpu)
        cpu.sim.restore(snap)
        assert (cpu.execute._busy, cpu.execute._owner, cpu.mem._busy,
                list(cpu.pc_unit.retired)) == mid
        assert cpu.sim.cycle == 25
        cpu.run()
        assert arch_state(cpu) == done

    def test_noseq_variant_still_snapshots(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SEQ", "0")
        cpu = make_cpu()
        assert cpu.sim.seq is None
        cpu.run_cycles(30)
        with cpu.sim.fork():
            first = cpu.run()
        second = cpu.run()
        assert (first.cycles, list(first.retired)) == (
            second.cycles, list(second.retired),
        )
