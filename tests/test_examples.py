"""Smoke tests: every shipped example runs to completion and reports
success markers in its output."""

import pathlib
import runpy
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "per-thread order preserved: True" in out
    assert "utilization" in out


def test_md5_hashing(capsys):
    out = run_example("md5_hashing.py", capsys)
    assert "MISMATCH" not in out
    assert out.count("ok") >= 8
    assert "barrier releases" in out


def test_processor_demo(capsys):
    out = run_example("processor_demo.py", capsys)
    assert "NO" not in out.replace("NOP", "")
    assert "triangle(6) = 21" in out
    assert "IPC" in out


def test_branch_merge_loop(capsys):
    out = run_example("branch_merge_loop.py", capsys)
    assert "all correct: True" in out
    assert "collatz(27) = 111" in out


def test_barrier_sync(capsys):
    out = run_example("barrier_sync.py", capsys)
    assert "releases: 1" in out
    assert "F F F F" in out  # all four threads FREE together at some cycle


def test_synthesis_flow(capsys):
    out = run_example("synthesis_flow.py", capsys)
    assert "all correct: True" in out
    assert "digraph" in out
    assert "autobuf" in out  # elasticization inserted buffers
