"""The resilience layer: deadlines, watchdog, retries, quotas, drain.

The acceptance properties of the fault-tolerant service:

* a deliberately hung scenario is killed at its deadline, lands as
  ``status="timeout"`` after exhausting retries, and its siblings all
  complete — inline and pooled;
* retried-then-ok rows are bit-identical to first-try rows
  (``canonical_report`` equality; ``attempts`` is volatile);
* admission control rejects over-quota submissions with a structured
  :class:`QuotaError` (HTTP 429 through the front end);
* graceful drain stops admission, finishes accepted jobs, flushes the
  store and delivers terminal events on open streams;
* the store survives crash-truncated appends and compacts losslessly.
"""

from __future__ import annotations

import collections
import json
import multiprocessing
import os
import signal
import threading
import time
import types

import pytest

from repro.sweep import __main__ as sweep_cli
from repro.sweep import jobs as jobs_mod
from repro.sweep.jobs import JobService, QuotaError
from repro.sweep.registry import (
    _REGISTRY,
    EnsembleSupport,
    Family,
    get_family,
    register_family,
)
from repro.sweep.report import canonical_report
from repro.sweep.spec import SpecError, from_dict, make_scenario
from repro.sweep.store import ResultStore

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool tests rely on fork inheritance",
)


@pytest.fixture
def temp_family():
    registered = []

    def add(family: Family) -> Family:
        register_family(family)
        registered.append(family.name)
        return family

    try:
        yield add
    finally:
        for name in registered:
            _REGISTRY.pop(name, None)


# Inline mode cannot kill a hung unit — it abandons the runner thread.
# The hung families below block on this event so abandoned zombies
# unwind promptly once the test releases them (pooled workers are
# simply SIGKILLed; the event never fires in the child).
_UNBLOCK = threading.Event()


@pytest.fixture
def unblock_hung():
    _UNBLOCK.clear()
    try:
        yield _UNBLOCK
    finally:
        _UNBLOCK.set()


def _build_tiny_chain(params, engine):
    return get_family("mt_chain").build(
        {"threads": 2, "n_funcs": 1, "width": 8}, engine
    )


def _run_hang(handle, scenario):
    # The deliberately hung scenario: a real simulation driven by a
    # never-true `until=` predicate (it only turns true when the test
    # tears down), with the safety bound lifted out of reach.
    handle.sim.run(until=lambda sim: _UNBLOCK.is_set(), max_cycles=10**9)
    return {"cycles": 0}


#: Marker file making `_run_hang_once` hang only on the first attempt.
_HANG_ONCE_MARKER: list[str] = [""]


def _run_hang_once(handle, scenario):
    marker = _HANG_ONCE_MARKER[0]
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("hung\n")
        return _run_hang(handle, scenario)
    # Deterministic pure-function metrics: bit-identical on any
    # attempt, any worker, any engine.
    return {"cycles": scenario.seed % 997, "threads": 2}


def _hung_spec(extra_scenarios=(), timeout_s=0.75, **campaign):
    spec = {
        "campaign": {"name": "hung", "seed": 3, **campaign},
        "scenarios": [
            {"family": "_hangs", "timeout_s": timeout_s},
            {
                "family": "mt_chain",
                "params": {"threads": 2, "n_funcs": 1},
                "stimulus": {"kind": "uniform", "items_per_thread": 3},
            },
            *extra_scenarios,
        ],
    }
    return spec


class TestSpecTimeouts:
    def test_scenario_and_campaign_timeout_parse(self):
        spec = from_dict({
            "campaign": {"seed": 1, "timeout_s": 5, "retries": 2},
            "scenarios": [
                {"family": "mt_chain", "timeout_s": 0.5},
                {"family": "mt_chain", "stimulus": {"kind": "active"}},
            ],
        })
        assert spec.timeout_s == 5.0
        assert spec.retries == 2
        assert spec.scenarios[0].timeout_s == 0.5
        assert spec.scenarios[1].timeout_s is None

    def test_timeout_does_not_change_result_key(self):
        plain = make_scenario("mt_chain", params={"threads": 2})
        bounded = make_scenario(
            "mt_chain", params={"threads": 2}, timeout_s=1.0
        )
        assert plain.result_key() == bounded.result_key()

    @pytest.mark.parametrize("bad", [0, -1, "soon"])
    def test_invalid_timeout_rejected(self, bad):
        with pytest.raises(SpecError) as excinfo:
            from_dict({
                "campaign": {},
                "scenarios": [{"family": "mt_chain", "timeout_s": bad}],
            })
        assert excinfo.value.field == "timeout_s"

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "two"])
    def test_invalid_retries_rejected(self, bad):
        with pytest.raises(SpecError) as excinfo:
            from_dict({
                "campaign": {"retries": bad},
                "scenarios": [{"family": "mt_chain"}],
            })
        assert excinfo.value.field == "retries"


class TestDerivedDeadline:
    def test_needs_min_samples_then_p95_multiple(self):
        with JobService(workers=0) as service:
            samples = service._durations.setdefault(
                "fam", collections.deque(maxlen=64)
            )
            for value in (0.1,) * (jobs_mod._TIMEOUT_MIN_SAMPLES - 1):
                samples.append(value)
            assert service._derived_timeout_s("fam") is None
            samples.append(10.0)  # p95 lands on the outlier
            derived = service._derived_timeout_s("fam")
            assert derived == pytest.approx(
                max(
                    jobs_mod._TIMEOUT_FLOOR_S,
                    jobs_mod._TIMEOUT_P95_MULTIPLE * 10.0,
                )
            )
            assert service._derived_timeout_s("unknown") is None

    def test_resolution_order(self, temp_family):
        with JobService(workers=0, default_timeout_s=99.0) as service:
            spec = from_dict({
                "campaign": {"seed": 1, "timeout_s": 7},
                "scenarios": [{"family": "mt_chain", "timeout_s": 3}],
            })
            job = jobs_mod.Job("job-x", spec, None, 1, timeout_s=1.0)
            scenario = spec.scenarios[0]
            assert service._resolve_timeout_s(job, scenario) == 1.0
            job.timeout_s = None
            assert service._resolve_timeout_s(job, scenario) == 3.0
            bare = make_scenario("mt_chain")
            assert service._resolve_timeout_s(job, bare) == 7.0
            job = jobs_mod.Job("job-y", from_dict({
                "campaign": {"seed": 1},
                "scenarios": [{"family": "mt_chain"}],
            }), None, 1)
            assert service._resolve_timeout_s(
                job, job.spec.scenarios[0]
            ) == 99.0

    def test_unit_deadline_is_none_if_any_member_unbounded(self):
        with JobService(workers=0) as service:
            spec = from_dict({
                "campaign": {"seed": 1},
                "scenarios": [
                    {"family": "mt_chain", "timeout_s": 2},
                    {"family": "mt_chain", "stimulus": {"kind": "active"}},
                ],
            })
            job = jobs_mod.Job("job-z", spec, None, 1)
            assert service._unit_deadline(job, spec.scenarios[:1]) == 2.0
            assert service._unit_deadline(job, list(spec.scenarios)) is None


class TestTimeoutInline:
    def test_hung_scenario_times_out_siblings_complete(
        self, temp_family, unblock_hung
    ):
        temp_family(Family(
            name="_hangs", build=_build_tiny_chain, run=_run_hang,
            reusable=False,
        ))
        with JobService(workers=0) as service:
            job_id = service.submit(_hung_spec(timeout_s=0.5), retries=0)
            report = service.result(job_id, timeout=60)
            events = list(service.events(job_id, timeout=5))
            # The service survives: a later job on the fresh runner
            # completes normally.
            again = service.result(service.submit({
                "campaign": {"name": "after", "seed": 9},
                "scenarios": [{
                    "family": "mt_chain",
                    "params": {"threads": 2, "n_funcs": 1},
                    "stimulus": {"kind": "uniform", "items_per_thread": 3},
                }],
            }), timeout=60)
        rows = {r["family"]: r for r in report["scenarios"]}
        hung = rows["_hangs"]
        assert hung["status"] == "timeout"
        assert "deadline" in hung["error"]
        assert hung["attempts"] == 1
        assert rows["mt_chain"]["status"] == "ok"
        assert report["summary"]["failed"] == 1
        watchdog = [e for e in events if e["event"] == "watchdog"]
        assert len(watchdog) == 1
        assert watchdog[0]["reason"] == "timeout"
        assert watchdog[0]["retrying"] is False
        assert again["summary"]["failed"] == 0
        text = service.render_metrics()
        assert "repro_scenario_timeouts_total 1" in text

    def test_retry_budget_exhausted_counts_attempts(
        self, temp_family, unblock_hung
    ):
        temp_family(Family(
            name="_hangs", build=_build_tiny_chain, run=_run_hang,
            reusable=False,
        ))
        with JobService(workers=0, retries=1) as service:
            job_id = service.submit(_hung_spec(timeout_s=0.5))
            report = service.result(job_id, timeout=60)
            events = list(service.events(job_id, timeout=5))
        hung = [r for r in report["scenarios"] if r["family"] == "_hangs"]
        assert hung[0]["status"] == "timeout"
        assert hung[0]["attempts"] == 2
        retry_events = [e for e in events if e["event"] == "retry"]
        assert [e["attempt"] for e in retry_events] == [2]
        assert retry_events[0]["reason"] == "timeout"
        watchdog = [e for e in events if e["event"] == "watchdog"]
        assert [e["retrying"] for e in watchdog] == [True, False]


class TestTimeoutPooled:
    @fork_only
    def test_hung_worker_killed_and_respawned(
        self, temp_family, unblock_hung
    ):
        temp_family(Family(
            name="_hangs", build=_build_tiny_chain, run=_run_hang,
            reusable=False,
        ))
        with JobService(workers=2, retries=0) as service:
            job_id = service.submit(_hung_spec(timeout_s=0.75))
            report = service.result(job_id, timeout=120)
            stats = service.stats()
            events = list(service.events(job_id, timeout=5))
        rows = {r["family"]: r for r in report["scenarios"]}
        assert rows["_hangs"]["status"] == "timeout"
        assert "killed" in rows["_hangs"]["error"]
        assert rows["mt_chain"]["status"] == "ok"
        assert stats["workers"]["respawns"] == 1
        assert all(stats["workers"]["alive"])
        watchdog = [e for e in events if e["event"] == "watchdog"]
        assert watchdog and watchdog[0]["reason"] == "timeout"


class TestRetryCanonicalEquality:
    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("engine", [None, "event", "compiled"])
    def test_retried_rows_bit_identical(
        self, tmp_path, temp_family, unblock_hung, workers, engine
    ):
        if workers == 2 and multiprocessing.get_start_method() != "fork":
            pytest.skip("pool tests rely on fork inheritance")
        temp_family(Family(
            name="_hangs_once", build=_build_tiny_chain,
            run=_run_hang_once, reusable=False,
        ))
        marker = tmp_path / f"hung-once-{workers}-{engine}"
        spec = {
            "campaign": {"name": "retry-parity", "seed": 21},
            "scenarios": [
                {"family": "_hangs_once", "timeout_s": 0.75},
                {
                    "family": "mt_chain",
                    "params": {"threads": 2, "n_funcs": 1},
                    "stimulus": {"kind": "uniform", "items_per_thread": 4},
                },
            ],
        }
        _HANG_ONCE_MARKER[0] = str(marker)
        try:
            with JobService(
                workers=workers, engine=engine, retries=1
            ) as service:
                disturbed = service.result(
                    service.submit(spec), timeout=120
                )
            # Undisturbed control: the marker pre-exists, so attempt 1
            # succeeds immediately on a fresh service.
            with JobService(
                workers=workers, engine=engine, retries=1
            ) as service:
                undisturbed = service.result(
                    service.submit(spec), timeout=120
                )
        finally:
            _HANG_ONCE_MARKER[0] = ""
        by_family = {r["family"]: r for r in disturbed["scenarios"]}
        assert by_family["_hangs_once"]["status"] == "ok"
        assert by_family["_hangs_once"]["attempts"] == 2
        control = {r["family"]: r for r in undisturbed["scenarios"]}
        assert control["_hangs_once"]["attempts"] == 1
        assert canonical_report(disturbed) == canonical_report(undisturbed)


def _fake_ensemble_build(params, engine):
    state = {"snapshots": 0}
    sim = types.SimpleNamespace(
        snapshot=lambda: dict(state),
        restore=lambda snap: None,
    )
    return types.SimpleNamespace(sim=sim)


#: Marker file making the chaos ensemble kill its worker exactly once.
_CHAOS_MARKER: list[str] = [""]


def _chaos_ensemble_run(handle, ctx, scenarios):
    marker = _CHAOS_MARKER[0]
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("killed\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return [
        ("ok", {"cycles": s.seed % 1009, "lane": s.params.get("lane")})
        for s in scenarios
    ]


class TestChaosEnsemble:
    @fork_only
    def test_sigkill_mid_ensemble_unit_retries_to_parity(
        self, tmp_path, temp_family
    ):
        temp_family(Family(
            name="_chaos_ens",
            build=_fake_ensemble_build,
            run=lambda handle, scenario: {"cycles": scenario.seed % 1009},
            reusable=True,
            ensemble=EnsembleSupport(
                group_key=lambda s: "chaos",
                lift=lambda handle: types.SimpleNamespace(
                    width=4, failures=[]
                ),
                run=_chaos_ensemble_run,
            ),
        ))
        spec = {
            "campaign": {"name": "chaos", "seed": 5},
            "scenarios": [
                {"family": "_chaos_ens", "grid": {"lane": [1, 2, 3]}},
                {
                    "family": "mt_chain",
                    "params": {"threads": 2, "n_funcs": 1},
                    "stimulus": {"kind": "uniform", "items_per_thread": 4},
                },
            ],
        }
        marker = tmp_path / "chaos-once"
        _CHAOS_MARKER[0] = str(marker)
        try:
            with JobService(workers=2, retries=1) as service:
                disturbed = service.result(
                    service.submit(spec), timeout=120
                )
                stats = service.stats()
            with JobService(workers=2, retries=1) as service:
                undisturbed = service.result(
                    service.submit(spec), timeout=120
                )
        finally:
            _CHAOS_MARKER[0] = ""
        assert disturbed["summary"]["failed"] == 0
        ens_rows = [
            r for r in disturbed["scenarios"] if r["family"] == "_chaos_ens"
        ]
        assert len(ens_rows) == 3
        assert all(r["attempts"] == 2 for r in ens_rows)
        assert stats["workers"]["respawns"] == 1
        assert canonical_report(disturbed) == canonical_report(undisturbed)


class TestAdmissionControl:
    def test_queue_and_scenario_quotas(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_adm_blocker", build=lambda p, e: object(), run=run,
            reusable=False,
        ))
        blocker = {
            "campaign": {"name": "blocker", "seed": 1},
            "scenarios": [{"family": "_adm_blocker"}],
        }
        try:
            with JobService(
                workers=0, max_queued_jobs=1, max_scenarios_per_job=2
            ) as service:
                running = service.submit(blocker)
                assert started.wait(10)
                # Queue has room: the per-job scenario quota is what trips.
                with pytest.raises(QuotaError) as excinfo:
                    service.submit({
                        "campaign": {"name": "big", "seed": 2},
                        "scenarios": [{
                            "family": "mt_chain",
                            "grid": {"threads": [2, 4, 8]},
                        }],
                    })
                assert excinfo.value.kind == "too_many_scenarios"
                assert excinfo.value.actual == 3
                queued = service.submit(blocker)  # 1 queued: at quota
                # The queue check runs before spec expansion, so a full
                # queue rejects even well-formed jobs.
                with pytest.raises(QuotaError) as excinfo:
                    service.submit(blocker)
                assert excinfo.value.kind == "queue_full"
                assert excinfo.value.limit == 1
                assert excinfo.value.to_dict()["actual"] == 1
                stats = service.stats()
                assert stats["admission"]["rejected"] == {
                    "queue_full": 1, "too_many_scenarios": 1,
                }
                assert stats["admission"]["saturation"] == 1.0
                text = service.render_metrics()
                assert (
                    'repro_jobs_rejected_total{reason="queue_full"} 1'
                    in text
                )
                gate.set()
                service.result(running, timeout=30)
                service.result(queued, timeout=30)
        finally:
            gate.set()


class TestGracefulDrain:
    def test_drain_finishes_jobs_rejects_new_flushes_store(
        self, tmp_path, temp_family
    ):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 7}

        temp_family(Family(
            name="_drain_blocker", build=lambda p, e: object(), run=run,
            reusable=False,
        ))
        blocker = {
            "campaign": {"name": "drainee", "seed": 1},
            "scenarios": [{"family": "_drain_blocker"}],
        }
        store_path = tmp_path / "store.jsonl"
        service = JobService(workers=0, store=store_path)
        try:
            job_id = service.submit(blocker)
            assert started.wait(10)
            # An open stream must receive the terminal event during the
            # drain, before the service closes.
            seen: list[dict] = []
            stream_done = threading.Event()

            def consume():
                for event in service.events(job_id, timeout=30):
                    seen.append(event)
                stream_done.set()

            threading.Thread(target=consume, daemon=True).start()
            drained: list = []
            drainer = threading.Thread(
                target=lambda: drained.append(service.shutdown(drain=True)),
                daemon=True,
            )
            drainer.start()
            # Admission stops immediately, while the job still runs.
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    service.submit(blocker)
                except QuotaError as exc:
                    assert exc.kind == "draining"
                    break
                time.sleep(0.02)
            else:
                pytest.fail("drain never started rejecting submissions")
            gate.set()
            drainer.join(timeout=30)
            assert not drainer.is_alive()
            assert drained and drained[0] is not None and drained[0] >= 0
            assert stream_done.wait(5)
            assert seen[-1]["event"] == "job"
            assert seen[-1]["state"] == "done"
            # The store was flushed with the finished row before close.
            reloaded = ResultStore(store_path)
            assert len(reloaded) == 1
            # Idempotent: a second shutdown is a no-op.
            assert service.shutdown() is None
        finally:
            gate.set()
            service.close()

    def test_shutdown_without_drain_cancels(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_drop_blocker", build=lambda p, e: object(), run=run,
            reusable=False,
        ))
        spec = {
            "campaign": {"name": "dropped", "seed": 1},
            "scenarios": [{"family": "_drop_blocker"}] * 2,
        }
        service = JobService(workers=0)
        try:
            job_id = service.submit(spec)
            assert started.wait(10)
            gate.set()
            assert service.shutdown(drain=False) is not None
            report = service.job(job_id).report
            assert report is not None
            statuses = sorted(
                r["status"] for r in report["scenarios"]
            )
            assert statuses in (
                ["cancelled", "ok"], ["ok", "ok"], ["cancelled", "cancelled"]
            )
        finally:
            gate.set()
            service.close()


class TestStoreCrashSafety:
    def _seed_store(self, path, n=3):
        store = ResultStore(path)
        for i in range(n):
            store.put(f"key-{i}", {"status": "ok", "metrics": {"i": i}})
        return store

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._seed_store(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "key-99", "row": {"status"')  # crash mid-append
        reloaded = ResultStore(path)
        assert len(reloaded) == 3
        assert reloaded.corrupt_lines == 1
        assert reloaded.get("key-1") == {"status": "ok", "metrics": {"i": 1}}
        assert reloaded.stats()["corrupt_lines"] == 1
        # Appending after a tolerated load still round-trips.
        reloaded.put("key-new", {"status": "ok", "metrics": {"i": 9}})
        assert len(ResultStore(path)) == 4

    def test_garbage_bytes_and_wrong_shapes_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._seed_store(path, n=2)
        with path.open("ab") as fh:
            fh.write(b"\x00\xffgarbage\n")
            fh.write(b'{"row": {"status": "ok"}}\n')  # missing key
            fh.write(b'{"key": 5, "row": {}}\n')  # key not a string
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.corrupt_lines == 3

    def test_compact_round_trips_and_drops_junk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = self._seed_store(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write("not json\n")
        store = ResultStore(path)
        before = {k: store.get(k) for k in ("key-0", "key-1", "key-2")}
        summary = store.compact()
        assert summary["entries"] == 3
        assert summary["dropped_lines"] == 1
        assert store.corrupt_lines == 0
        reloaded = ResultStore(path)
        assert len(reloaded) == 3
        assert reloaded.corrupt_lines == 0
        assert {
            k: reloaded.get(k) for k in before
        } == before
        # The file now has exactly one line per live entry.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3

    def test_lru_eviction(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path, max_entries=2)
        store.put("a", {"status": "ok", "metrics": {}})
        store.put("b", {"status": "ok", "metrics": {}})
        assert store.get("a") is not None  # refresh: b is now LRU
        store.put("c", {"status": "ok", "metrics": {}})
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.evictions == 1
        assert store.stats()["max_entries"] == 2
        # compact() drops evicted lines from the file too.
        store.compact()
        reloaded = ResultStore(path, max_entries=2)
        assert len(reloaded) == 2
        with pytest.raises(ValueError):
            ResultStore(max_entries=0)

    def test_flush_is_safe_everywhere(self, tmp_path):
        ResultStore().flush()  # memory store: no-op
        ResultStore(tmp_path / "never-written.jsonl").flush()
        store = self._seed_store(tmp_path / "store.jsonl", n=1)
        store.flush()
        assert len(ResultStore(tmp_path / "store.jsonl")) == 1


class TestServiceHTTP:
    def test_quota_rejection_is_429_with_structured_body(self, temp_family):
        from repro.serve import ServiceClient, ServiceError, make_server

        service = JobService(workers=0, max_scenarios_per_job=1)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
        try:
            health = client.healthz()
            assert health["admission"]["max_scenarios_per_job"] == 1
            assert health["admission"]["draining"] is False
            with pytest.raises(ServiceError) as excinfo:
                client.submit({
                    "campaign": {"name": "big", "seed": 2},
                    "scenarios": [
                        {"family": "mt_chain", "grid": {"threads": [2, 4]}},
                    ],
                })
            assert excinfo.value.status == 429
            error = excinfo.value.payload["error"]
            assert error["kind"] == "too_many_scenarios"
            assert error["limit"] == 1
            assert error["actual"] == 2
            # 4xx is the caller's bug: the client must not have retried.
            assert (
                client.healthz()["admission"]["rejected"]
                == {"too_many_scenarios": 1}
            )
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    def test_client_retries_ride_out_late_server_start(self):
        import socket

        from repro.serve import ServiceClient, make_server

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        # The port is free again: connections are refused until the
        # server comes up ~0.4s from now.
        cleanup: list = []

        def late_start():
            time.sleep(0.4)
            service = JobService(workers=0)
            server = make_server(service, port=port)
            cleanup.extend([server, service])
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()

        threading.Thread(target=late_start, daemon=True).start()
        try:
            eager = ServiceClient(
                f"http://127.0.0.1:{port}", timeout=5.0,
                retries=0, backoff_s=0.05,
            )
            with pytest.raises(OSError):
                eager.healthz()
            patient = ServiceClient(
                f"http://127.0.0.1:{port}", timeout=5.0,
                retries=6, backoff_s=0.15,
            )
            assert patient.healthz()["status"] == "ok"
        finally:
            time.sleep(0.05)
            for obj in cleanup:
                if hasattr(obj, "server_close"):
                    obj.shutdown()
                    obj.server_close()
                else:
                    obj.close()


class TestCLIFlags:
    def test_run_timeout_and_retries_flags(
        self, tmp_path, temp_family, unblock_hung, capsys
    ):
        temp_family(Family(
            name="_hangs", build=_build_tiny_chain, run=_run_hang,
            reusable=False,
        ))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(_hung_spec(timeout_s=30.0)), encoding="utf-8"
        )
        rc = sweep_cli.main([
            "run", str(spec_path), "--timeout-s", "0.5", "--retries", "0",
            "--out", str(tmp_path / "out"), "--name", "hung",
        ])
        assert rc == sweep_cli.EXIT_SCENARIO_FAILURES
        captured = capsys.readouterr()
        assert "FAILED" in captured.err and "timeout" in captured.err
        report = json.loads(
            (tmp_path / "out" / "hung.json").read_text(encoding="utf-8")
        )
        rows = {r["family"]: r for r in report["scenarios"]}
        # --timeout-s overrode the spec's generous 30s per-scenario value.
        assert rows["_hangs"]["status"] == "timeout"
        assert rows["_hangs"]["attempts"] == 1
        assert rows["mt_chain"]["status"] == "ok"
