"""The jobs API: queue, worker pool, dedup store, cancellation.

The service-level acceptance properties live here:

* resubmitting an identical campaign to a warm service completes with
  zero simulated scenarios (100% dedup hits) and bit-identical
  per-scenario metrics;
* design caches survive across jobs (the cross-job extension of the
  per-campaign reuse the runner always had), in both inline and
  pooled mode;
* a worker process that dies fails only its in-flight scenario — the
  pool respawns the worker and the job (and later jobs) complete.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import pytest

from repro.sweep import jobs as jobs_mod
from repro.sweep.jobs import JobService, design_affinity
from repro.sweep.registry import _REGISTRY, Family, register_family
from repro.sweep.report import canonical_report
from repro.sweep.runner import run_campaign
from repro.sweep.spec import CampaignSpec, SpecError, from_dict, make_scenario
from repro.sweep.store import ResultStore

SMALL_CAMPAIGN = {
    "campaign": {"name": "jobs-test", "seed": 11, "workers": 2},
    "scenarios": [
        {
            "family": "mt_chain",
            "params": {"threads": 2, "n_funcs": 2},
            "stimulus": {"kind": "uniform", "items_per_thread": 6},
        },
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2},
            "grid": {"meb": ["full", "reduced"]},
            "stimulus": {"kind": "uniform", "items_per_thread": 8},
        },
    ],
}


def _metrics_by_key(report):
    return {
        row["key"]: row["metrics"]
        for row in report["scenarios"]
        if row["status"] == "ok"
    }


@pytest.fixture
def temp_family():
    """Register throwaway families and drop them after the test."""
    registered = []

    def add(family: Family) -> Family:
        register_family(family)
        registered.append(family.name)
        return family

    try:
        yield add
    finally:
        for name in registered:
            _REGISTRY.pop(name, None)


class TestResultKey:
    def test_stimulus_options_change_the_key(self):
        a = make_scenario(
            "mt_chain", params={"threads": 2},
            stimulus={"kind": "uniform", "items_per_thread": 4},
        )
        b = make_scenario(
            "mt_chain", params={"threads": 2},
            stimulus={"kind": "uniform", "items_per_thread": 5},
        )
        # Same campaign key (options are not part of it) but distinct
        # result keys: dedup must not conflate different traffic.
        assert a.key == b.key
        assert a.result_key() != b.result_key()

    def test_key_is_deterministic(self):
        mk = lambda: make_scenario(
            "md5", params={"threads": 4}, stimulus={"messages": 2}, seed=3
        )
        assert mk().result_key() == mk().result_key()

    def test_seed_participates(self):
        a = make_scenario("mt_chain", seed=1)
        b = make_scenario("mt_chain", seed=2)
        assert a.result_key() != b.result_key()


class TestResultStore:
    def test_only_ok_rows_stored(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert not store.put("k1", {"status": "error", "error": "boom"})
        assert store.put("k2", {"status": "ok", "metrics": {"cycles": 5}})
        assert len(store) == 1

    def test_roundtrip_and_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        row = {
            "key": "x()/uniform", "status": "ok",
            "metrics": {"cycles": 9}, "shard": 3, "duration_s": 1.2,
            "design_cache": "hit", "index": 7,
        }
        store.put("k", row)
        reloaded = ResultStore(path)
        got = reloaded.get("k")
        assert got["metrics"] == {"cycles": 9}
        # Placement metadata must not survive into the store.
        for field in ("shard", "duration_s", "design_cache", "index"):
            assert field not in got
        assert reloaded.stats()["hits"] == 1

    def test_hit_rate(self):
        store = ResultStore()
        store.put("k", {"status": "ok", "metrics": {}})
        assert store.get("k") is not None
        assert store.get("missing") is None
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestJobLifecycle:
    def test_submit_status_result(self):
        with JobService(workers=0) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            report = service.result(job_id)
            status = service.status(job_id)
        assert status["state"] == "done"
        assert status["completed"] == status["scenarios"] == 3
        assert status["ok"] == 3 and status["failed"] == 0
        assert report["summary"]["ok"] == 3
        assert [r["index"] for r in report["scenarios"]] == [0, 1, 2]

    def test_submit_accepts_spec_dict_path_and_object(self, tmp_path):
        import json as json_mod

        path = tmp_path / "c.json"
        path.write_text(json_mod.dumps(SMALL_CAMPAIGN), encoding="utf-8")
        spec = from_dict(SMALL_CAMPAIGN)
        with JobService(workers=0) as service:
            ids = [
                service.submit(SMALL_CAMPAIGN),
                service.submit(path),
                service.submit(spec),
            ]
            reports = [service.result(job_id) for job_id in ids]
        assert (
            _metrics_by_key(reports[0])
            == _metrics_by_key(reports[1])
            == _metrics_by_key(reports[2])
        )

    def test_bad_spec_raises_synchronously(self):
        with JobService(workers=0) as service:
            with pytest.raises(SpecError) as excinfo:
                service.submit({"scenarios": [{"params": {}}]})
        err = excinfo.value.to_dict()
        assert err["path"] == "scenarios[0]"
        assert err["field"] == "family"
        assert "family" in err["reason"]

    def test_unknown_job_id(self):
        with JobService(workers=0) as service:
            with pytest.raises(KeyError):
                service.status("job-999999")

    def test_list_jobs_in_submission_order(self):
        with JobService(workers=0) as service:
            first = service.submit(SMALL_CAMPAIGN)
            second = service.submit(SMALL_CAMPAIGN)
            service.result(second)
            listed = service.list_jobs()
        assert [job["id"] for job in listed] == [first, second]

    def test_closed_service_rejects_submissions(self):
        service = JobService(workers=0)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(SMALL_CAMPAIGN)


class TestDedup:
    def test_warm_resubmission_simulates_nothing(self):
        with JobService(workers=0, store=True) as service:
            cold = service.result(service.submit(SMALL_CAMPAIGN))
            warm = service.result(service.submit(SMALL_CAMPAIGN))
        assert "dedup_hits" not in cold["summary"]
        # The acceptance property: 100% dedup hits, zero simulated.
        assert warm["summary"]["dedup_hits"] == 3
        assert all(row["cached"] for row in warm["scenarios"])
        assert canonical_report(cold) == canonical_report(warm)

    def test_store_persists_across_services(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with JobService(workers=0, store=path) as service:
            first = service.result(service.submit(SMALL_CAMPAIGN))
        with JobService(workers=0, store=path) as service:
            second = service.result(service.submit(SMALL_CAMPAIGN))
        assert second["summary"]["dedup_hits"] == 3
        assert _metrics_by_key(first) == _metrics_by_key(second)

    def test_different_stimulus_misses(self):
        changed = {
            "campaign": dict(SMALL_CAMPAIGN["campaign"]),
            "scenarios": [
                {
                    "family": "mt_chain",
                    "params": {"threads": 2, "n_funcs": 2},
                    "stimulus": {"kind": "uniform", "items_per_thread": 7},
                },
            ],
        }
        with JobService(workers=0, store=True) as service:
            service.result(service.submit(SMALL_CAMPAIGN))
            report = service.result(service.submit(changed))
        assert "dedup_hits" not in report["summary"]

    def test_service_lifetime_dedup_stats(self):
        # Per-job dedup_hits only covers one submission; stats() (and
        # therefore /healthz) folds every store lookup since service
        # start, which is what the CI smoke asserts on.
        with JobService(workers=0, store=True) as service:
            service.result(service.submit(SMALL_CAMPAIGN))
            cold = service.stats()["dedup"]
            assert cold == {
                "hits": 0, "misses": 3, "hit_rate": 0.0, "store_entries": 3,
            }
            service.result(service.submit(SMALL_CAMPAIGN))
            warm = service.stats()["dedup"]
            assert warm == {
                "hits": 3, "misses": 3, "hit_rate": 0.5, "store_entries": 3,
            }

    def test_storeless_service_reports_zero_dedup(self):
        with JobService(workers=0) as service:
            service.result(service.submit(SMALL_CAMPAIGN))
            assert service.stats()["dedup"] == {
                "hits": 0, "misses": 0, "hit_rate": 0.0, "store_entries": 0,
            }

    def test_errors_are_not_memoized(self):
        bad = {
            "campaign": {"name": "b", "seed": 1},
            "scenarios": [{"family": "warp_drive"}],
        }
        with JobService(workers=0, store=True) as service:
            first = service.result(service.submit(bad))
            second = service.result(service.submit(bad))
        assert first["scenarios"][0]["status"] == "error"
        assert second["scenarios"][0]["status"] == "error"
        assert not second["scenarios"][0].get("cached")


class TestDesignCacheAffinity:
    def test_inline_cache_survives_jobs(self):
        with JobService(workers=0) as service:
            first = service.result(service.submit(SMALL_CAMPAIGN))
            second = service.result(service.submit(SMALL_CAMPAIGN))
        assert {r["design_cache"] for r in first["scenarios"]} == {"build"}
        # Same designs, second job: every scenario rewinds a cached sim.
        assert {r["design_cache"] for r in second["scenarios"]} == {"hit"}
        assert _metrics_by_key(first) == _metrics_by_key(second)

    def test_affinity_is_stable(self):
        key = "mt_chain(n_funcs=2,threads=2)"
        assert design_affinity(key, 4) == design_affinity(key, 4)
        assert 0 <= design_affinity(key, 4) < 4

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="pool tests rely on fork inheritance",
    )
    def test_pooled_cache_survives_jobs(self):
        with JobService(workers=2) as service:
            first = service.result(service.submit(SMALL_CAMPAIGN))
            second = service.result(service.submit(SMALL_CAMPAIGN))
        assert {r["design_cache"] for r in first["scenarios"]} == {"build"}
        assert {r["design_cache"] for r in second["scenarios"]} == {"hit"}
        # Affinity: each design key maps to exactly one worker, and the
        # assignment repeats across jobs.
        for report in (first, second):
            by_design: dict[str, set] = {}
            for row in report["scenarios"]:
                design = f"{row['family']}({row['params']})"
                by_design.setdefault(design, set()).add(row["shard"])
            assert all(len(shards) == 1 for shards in by_design.values())
        assert _metrics_by_key(first) == _metrics_by_key(second)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="pool tests rely on fork inheritance",
    )
    def test_pooled_equals_inline(self):
        inline = run_campaign(from_dict(SMALL_CAMPAIGN), workers=1)
        with JobService(workers=2) as service:
            pooled = service.result(service.submit(SMALL_CAMPAIGN))
        assert _metrics_by_key(inline) == _metrics_by_key(pooled)


def _build_nothing(params, engine):
    return object()


def _run_kill_worker(handle, scenario):
    os._exit(3)


def _run_trivial(handle, scenario):
    return {"cycles": 1}


class TestWorkerDeath:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="pool tests rely on fork inheritance",
    )
    def test_worker_death_contained_and_respawned(self, temp_family):
        temp_family(Family(
            name="_kills_worker", build=_build_nothing,
            run=_run_kill_worker, reusable=False,
        ))
        spec = {
            "campaign": {"name": "kill", "seed": 1},
            "scenarios": [
                {"family": "_kills_worker"},
                {
                    "family": "mt_chain",
                    "params": {"threads": 2, "n_funcs": 1},
                    "stimulus": {"kind": "uniform", "items_per_thread": 3},
                },
            ],
        }
        with JobService(workers=2) as service:
            report = service.result(service.submit(spec))
            stats = service.stats()
            # The pool recovered: a later healthy job still completes.
            after = service.result(service.submit(SMALL_CAMPAIGN))
        rows = {r["key"]: r for r in report["scenarios"]}
        killed = rows["_kills_worker()/uniform"]
        assert killed["status"] == "worker-failed"
        assert "died" in killed["error"]
        # The default retry budget (1) re-ran the unit once; the family
        # kills its worker every time, so the row exhausted both
        # attempts and both deaths triggered a respawn.
        assert killed["attempts"] == 2
        healthy = rows["mt_chain(n_funcs=1,threads=2)/uniform"]
        assert healthy["status"] == "ok"
        assert stats["workers"]["respawns"] == 2
        assert all(stats["workers"]["alive"])
        assert after["summary"]["failed"] == 0


class TestCancel:
    def test_cancel_running_job(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_blocker", build=_build_nothing, run=run, reusable=False,
        ))
        spec = {
            "campaign": {"name": "cancelme", "seed": 1},
            "scenarios": [{"family": "_blocker"}] * 3,
        }
        with JobService(workers=0) as service:
            job_id = service.submit(spec)
            assert started.wait(10)
            assert service.cancel(job_id)
            gate.set()
            report = service.result(job_id)
            status = service.status(job_id)
        assert status["state"] == "cancelled"
        assert [r["status"] for r in report["scenarios"]] == [
            "ok", "cancelled", "cancelled",
        ]

    def test_cancel_queued_job(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_blocker2", build=_build_nothing, run=run, reusable=False,
        ))
        blocker = {
            "campaign": {"name": "head", "seed": 1},
            "scenarios": [{"family": "_blocker2"}],
        }
        with JobService(workers=0) as service:
            head = service.submit(blocker)
            queued = service.submit(SMALL_CAMPAIGN)
            assert started.wait(10)
            assert service.cancel(queued)
            gate.set()
            service.result(head)
            report = service.result(queued)
            status = service.status(queued)
        assert status["state"] == "cancelled"
        assert all(
            r["status"] == "cancelled" for r in report["scenarios"]
        )

    def test_cancel_finished_job_returns_false(self):
        with JobService(workers=0) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            service.result(job_id)
            assert not service.cancel(job_id)


class TestModuleLevelAPI:
    def test_default_service_roundtrip(self):
        previous = jobs_mod._default_service
        jobs_mod._default_service = None
        try:
            job_id = jobs_mod.submit_campaign(SMALL_CAMPAIGN)
            report = jobs_mod.job_result(job_id)
            status = jobs_mod.job_status(job_id)
            assert status["state"] == "done"
            assert report["summary"]["ok"] == 3
            assert not jobs_mod.cancel(job_id)
            families = jobs_mod.list_families()
            assert "mt_chain" in families["families"]
        finally:
            if jobs_mod._default_service is not None:
                jobs_mod._default_service.close()
            jobs_mod._default_service = previous

    def test_configure_replaces_default(self):
        previous = jobs_mod._default_service
        jobs_mod._default_service = None
        try:
            service = jobs_mod.configure(workers=0, store=True)
            assert jobs_mod.default_service() is service
            first = jobs_mod.job_result(
                jobs_mod.submit_campaign(SMALL_CAMPAIGN)
            )
            warm = jobs_mod.job_result(
                jobs_mod.submit_campaign(SMALL_CAMPAIGN)
            )
            assert first["summary"]["ok"] == 3
            assert warm["summary"]["dedup_hits"] == 3
        finally:
            if jobs_mod._default_service is not None:
                jobs_mod._default_service.close()
            jobs_mod._default_service = previous


class TestRunCampaignCompat:
    """run_campaign is now a jobs-API client; its contract must hold."""

    def test_report_shape_unchanged(self):
        report = run_campaign(from_dict(SMALL_CAMPAIGN), workers=1)
        assert set(report) == {"campaign", "summary", "scenarios"}
        assert report["campaign"]["workers"] == 1
        for row in report["scenarios"]:
            assert {"key", "index", "status", "shard", "duration_s"} <= set(
                row
            )

    def test_store_argument_memoizes(self, tmp_path):
        spec = from_dict(SMALL_CAMPAIGN)
        store = tmp_path / "memo.jsonl"
        cold = run_campaign(spec, workers=1, store=store)
        warm = run_campaign(spec, workers=1, store=store)
        assert warm["summary"]["dedup_hits"] == 3
        assert _metrics_by_key(cold) == _metrics_by_key(warm)


class TestCampaignSpecType:
    def test_submit_requires_expanded_spec(self):
        spec = from_dict(SMALL_CAMPAIGN)
        assert isinstance(spec, CampaignSpec)


class TestObservability:
    """Events stream, merged traces, metrics — the jobs-API surface."""

    def test_events_replay_after_done(self):
        with JobService(workers=0) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            service.result(job_id)
            events = list(service.events(job_id))
        assert events[0]["event"] == "job"
        assert events[0]["state"] == "running"
        scenario_events = [e for e in events if e["event"] == "scenario"]
        assert len(scenario_events) == 3
        keys = {e["key"] for e in scenario_events}
        assert len(keys) == 3
        assert [e["completed"] for e in scenario_events] == [1, 2, 3]
        for e in scenario_events:
            assert e["total"] == 3 and e["status"] == "ok"
            assert e["cached"] is False
        last = events[-1]
        assert last["event"] == "job" and last["state"] == "done"
        assert last["ok"] == 3 and last["failed"] == 0
        # seq numbers are the dedup key for replay/live overlap
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_events_live_subscriber_sees_everything(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_slow_obs", build=_build_nothing, run=run, reusable=False,
        ))
        spec = {
            "campaign": {"name": "live", "seed": 1},
            "scenarios": [{"family": "_slow_obs"}] * 2,
        }
        with JobService(workers=0) as service:
            job_id = service.submit(spec)
            assert started.wait(10)
            collected = []

            def consume():
                for event in service.events(job_id, timeout=30):
                    collected.append(event)

            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            gate.set()
            consumer.join(timeout=30)
            assert not consumer.is_alive()
        assert collected[-1]["state"] == "done"
        assert sum(1 for e in collected if e["event"] == "scenario") == 2

    def test_events_cancelled_job_terminates_stream(self, temp_family):
        gate = threading.Event()
        started = threading.Event()

        def run(handle, scenario):
            started.set()
            assert gate.wait(10)
            return {"cycles": 1}

        temp_family(Family(
            name="_cancel_obs", build=_build_nothing, run=run,
            reusable=False,
        ))
        spec = {
            "campaign": {"name": "cancel-events", "seed": 1},
            "scenarios": [{"family": "_cancel_obs"}] * 3,
        }
        with JobService(workers=0) as service:
            job_id = service.submit(spec)
            assert started.wait(10)
            assert service.cancel(job_id)
            gate.set()
            events = list(service.events(job_id, timeout=30))
        assert events[-1]["event"] == "job"
        assert events[-1]["state"] == "cancelled"

    def test_events_unknown_job_raises(self):
        with JobService(workers=0) as service:
            with pytest.raises(KeyError):
                list(service.events("job-999999"))

    def test_inline_trace_hierarchy(self):
        with JobService(workers=0) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            service.result(job_id)
            spans = service.trace(job_id)
        names = [s["name"] for s in spans]
        assert names.count("job") == 1
        assert "unit" in names and "scenario" in names
        assert {"build", "simulate", "metrics"} <= set(names)
        by_id = {s["span_id"]: s for s in spans}
        job_span = next(s for s in spans if s["name"] == "job")
        assert job_span["trace_id"] == job_id
        assert job_span["attrs"]["state"] == "done"
        for span in spans:
            assert span["trace_id"] == job_id
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id
        # start-ordered
        starts = [s["start_unix"] for s in spans]
        assert starts == sorted(starts)

    def test_pooled_trace_merges_worker_spans(self):
        with JobService(workers=2) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            service.result(job_id)
            spans = service.trace(job_id)
        assert all(s["trace_id"] == job_id for s in spans)
        workers_seen = {
            s["attrs"]["worker"]
            for s in spans
            if "worker" in s.get("attrs", {})
        }
        assert workers_seen, "no worker-tagged spans shipped back"
        scenario_spans = [s for s in spans if s["name"] == "scenario"]
        assert len(scenario_spans) == 3
        # worker unit spans parent to the dispatcher's job span
        job_span = next(s for s in spans if s["name"] == "job")
        unit_spans = [s for s in spans if s["name"] == "unit"]
        assert all(
            u["parent_id"] == job_span["span_id"] for u in unit_spans
        )

    def test_cached_rows_emit_events_and_spans(self):
        with JobService(workers=0, store=True) as service:
            first = service.submit(SMALL_CAMPAIGN)
            service.result(first)
            second = service.submit(SMALL_CAMPAIGN)
            service.result(second)
            events = list(service.events(second))
            spans = service.trace(second)
        scenario_events = [e for e in events if e["event"] == "scenario"]
        assert len(scenario_events) == 3
        assert all(e["cached"] for e in scenario_events)
        cached_spans = [
            s for s in spans
            if s["name"] == "scenario" and s["attrs"].get("cached")
        ]
        assert len(cached_spans) == 3

    def test_metrics_counters_accumulate(self):
        with JobService(workers=0, store=True) as service:
            first = service.submit(SMALL_CAMPAIGN)
            service.result(first)
            second = service.submit(SMALL_CAMPAIGN)
            service.result(second)
            text = service.render_metrics()
        assert "repro_jobs_submitted_total 2" in text
        assert 'repro_jobs_completed_total{state="done"} 2' in text
        assert 'repro_scenarios_completed_total{status="ok"} 6' in text
        assert 'repro_dedup_lookups_total{result="miss"} 3' in text
        assert 'repro_dedup_lookups_total{result="hit"} 3' in text
        assert "repro_scenario_duration_seconds_count 6" in text
        assert "repro_job_duration_seconds_count 2" in text

    def test_profile_flag_attaches_and_stays_volatile(self):
        store = ResultStore()
        with JobService(workers=0, store=store, profile=True) as service:
            job_id = service.submit(SMALL_CAMPAIGN)
            report = service.result(job_id)
        ok_rows = [
            r for r in report["scenarios"] if r["status"] == "ok"
        ]
        assert ok_rows and all("profile" in r for r in ok_rows)
        # canonical reports strip the profile payloads...
        canon = canonical_report(report)
        assert all("profile" not in r for r in canon["scenarios"])
        # ...and the dedup store never persists them
        assert len(store) == 3
        for row in store._rows.values():
            assert "profile" not in row

    def test_submit_profile_override(self):
        with JobService(workers=0, profile=False) as service:
            job_id = service.submit(SMALL_CAMPAIGN, profile=True)
            report = service.result(job_id)
            assert any("profile" in r for r in report["scenarios"])
            plain = service.submit(SMALL_CAMPAIGN)
            report = service.result(plain)
            assert not any("profile" in r for r in report["scenarios"])
