"""Coverage-guided fuzzing and fault campaigns: determinism + oracles.

The load-bearing properties:

* the fuzz family's mutant sequence and coverage map are bit-identical
  across worker counts and settle engines (digests included), because
  everything derives from ``random.Random(scenario.seed)`` and the
  engines are cycle-identical;
* the mutation loop *beats* the grid-analogue seed corpus — coverage
  steering reaches structural states the classic active-thread sweep
  never does;
* every registered fault kind trips its oracle the way the menagerie
  table (:data:`repro.sweep.fuzz.FAULT_KINDS`) promises, and a fault
  armed beyond the run window leaves the design indistinguishable from
  a healthy one;
* the coverage regression gate regresses on coverage/oracle drops and
  tolerates identical reports.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import random

import pytest

from repro.core import FullMEB, MTChannel, MTMonitor, MTSink, MTSource
from repro.kernel import build
from repro.sweep.coverage import CoverageMap, structural_probes
from repro.sweep.fuzz import (
    FAULT_KINDS,
    _build_fault,
    _build_fuzz,
    mutate_pattern,
    run_fault_window,
    seed_corpus,
)
from repro.sweep.registry import get_family
from repro.sweep.report import canonical_report
from repro.sweep.runner import run_campaign
from repro.sweep.spec import from_dict, make_scenario

FUZZ_CAMPAIGN = {
    "campaign": {"name": "fuzz-test", "seed": 99},
    "scenarios": [
        {
            "family": "fuzz",
            "params": {"base": "mt_pipeline", "threads": 2, "n_stages": 2},
            "grid": {"meb": ["full", "reduced"]},
            "stimulus": {"kind": "fuzz", "rounds": 12},
        },
        {
            "family": "fault",
            "params": {"threads": 2},
            "grid": {"fault": sorted(FAULT_KINDS)},
            "stimulus": {"kind": "inject", "items_per_thread": 4},
        },
    ],
}


# ----------------------------------------------------------------------
# CoverageMap
# ----------------------------------------------------------------------

class TestCoverageMap:
    @staticmethod
    def _small_design():
        threads = 2
        c0 = MTChannel("c0", threads=threads)
        c1 = MTChannel("c1", threads=threads)
        src = MTSource("src", c0, items=[[] for _ in range(threads)])
        meb = FullMEB("meb", c0, c1)
        sink = MTSink("snk", c1)
        mon = MTMonitor("mon", c1)
        sim = build(c0, c1, src, meb, sink, mon)
        return sim, src, sink

    def test_probes_and_space(self):
        sim, _src, _sink = self._small_design()
        probes = structural_probes(sim)
        assert [p.kind for p in probes] == ["full_meb"]
        # 2 threads x (SLOTS+1) occupancies each.
        meb = sim.find("meb")
        assert probes[0].space == (meb.SLOTS_PER_THREAD + 1) ** 2

    def test_observe_accumulates_and_detach_restores(self):
        sim, src, _sink = self._small_design()
        cov = CoverageMap(sim).attach()
        assert cov.new_states == 1  # attach records the now-state
        for t in range(2):
            for k in range(4):
                src.push(t, (t << 8) | k)
        sim.run(cycles=20)
        assert cov.new_states > 1
        assert 0 < cov.coverage_pct <= 100
        assert cov.covered == sum(cov.local_counts().values())
        cov.detach()
        before = cov.new_states
        sim.run(cycles=5)
        assert cov.new_states == before  # detached: no more observation
        # Identical maps digest identically; digests pin the joint set.
        assert cov.digest() == cov.digest()

    def test_summary_is_json_safe(self):
        sim, _src, _sink = self._small_design()
        cov = CoverageMap(sim).attach()
        sim.run(cycles=3)
        cov.detach()
        summary = cov.summary()
        json.dumps(summary)
        assert summary["signature_space"] == cov.space
        assert summary["per_component"] == {"meb": len(cov.local[0])}


# ----------------------------------------------------------------------
# mutation operators
# ----------------------------------------------------------------------

class TestMutation:
    def test_seed_corpus_is_the_grid_analogue(self):
        corpus = seed_corpus(threads=3, burst=2, gap=4)
        assert corpus == [
            ((0b001, 2, 4, 0),),
            ((0b011, 2, 4, 0),),
            ((0b111, 2, 4, 0),),
        ]

    def test_mutations_deterministic_and_well_formed(self):
        base = seed_corpus(4, 3, 4)[-1]
        seq_a, seq_b = [], []
        for seq, rng in ((seq_a, random.Random(5)), (seq_b, random.Random(5))):
            pattern = base
            for _ in range(200):
                pattern = mutate_pattern(
                    pattern, rng, threads=4, max_burst=5, max_waves=6
                )
                seq.append(pattern)
        assert seq_a == seq_b  # same seed, bit-identical mutant sequence
        for pattern in seq_a:
            assert 1 <= len(pattern) <= 6
            for mask, burst, gap, stall in pattern:
                assert 0 <= mask < 16
                assert 1 <= burst <= 5
                assert gap in (1, 2, 3, 5, 8, 13, 21) or gap == 4
                assert stall in (0, 1, 2, 3, 5, 8)


# ----------------------------------------------------------------------
# the fuzz family
# ----------------------------------------------------------------------

class TestFuzzFamily:
    @staticmethod
    def _run_once(engine=None, seed=31):
        family = get_family("fuzz")
        params = {"base": "mt_pipeline", "threads": 2, "n_stages": 2,
                  "meb": "reduced"}
        scenario = make_scenario(
            "fuzz", params, {"kind": "fuzz", "rounds": 12}, seed=seed
        )
        handle = family.build(params, engine)
        return family.run(handle, scenario)

    def test_beats_grid_baseline(self):
        metrics = self._run_once()
        assert metrics["coverage_pct"] > metrics["baseline_coverage_pct"]
        assert metrics["coverage_gain_pct"] > 0
        assert metrics["mutants_kept"] > 0
        assert metrics["corpus_size"] == 2 + metrics["mutants_kept"]

    def test_engine_invariant_digests(self):
        event = self._run_once(engine="event")
        compiled = self._run_once(engine="compiled")
        assert event == compiled  # includes mutant + coverage digests

    def test_seed_changes_the_trajectory(self):
        a = self._run_once(seed=31)
        b = self._run_once(seed=32)
        assert a["mutant_digest"] != b["mutant_digest"]

    def test_detaches_observer_between_scenarios(self):
        family = get_family("fuzz")
        params = {"base": "mt_pipeline", "threads": 2, "n_stages": 2}
        handle = family.build(params, None)
        scenario = make_scenario(
            "fuzz", params, {"kind": "fuzz", "rounds": 4}, seed=1
        )
        family.run(handle, scenario)
        # Reusable family: the coverage observer must not leak into the
        # next scenario run on the same simulator.
        assert not handle.sim._observers

    def test_rejects_unknown_base(self):
        with pytest.raises(ValueError, match="fuzz base"):
            _build_fuzz({"base": "md5"}, None)


# ----------------------------------------------------------------------
# the fault family
# ----------------------------------------------------------------------

class TestFaultFamily:
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_armed_fault_trips_its_oracle(self, kind):
        family = get_family("fault")
        params = {"fault": kind, "threads": 2}
        scenario = make_scenario(
            "fault", params, {"kind": "inject", "items_per_thread": 4},
            seed=7,
        )
        metrics = family.run(family.build(params, None), scenario)
        expected, _detector = FAULT_KINDS[kind]
        assert metrics["fired"], kind
        assert metrics["outcome"] == expected
        assert metrics["oracle_ok"]
        assert metrics["faults_survived"] == int(expected == "survived")

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_unarmed_fault_is_clean(self, kind):
        # Armed far beyond the run window, the faulty build must be
        # indistinguishable from a healthy design.
        handle = _build_fault({"fault": kind, "threads": 2,
                               "fire_at": 10_000}, None)
        result = run_fault_window(handle, items=4, window=60)
        assert not result["fired"]
        assert result["outcome"] == "clean"
        assert result["error"] is None

    def test_unfired_drop_matches_healthy_delivery(self):
        armed = _build_fault({"fault": "drop", "threads": 2,
                              "fire_at": 10_000}, None)
        healthy = _build_fault({"fault": "stuck_ready", "threads": 2,
                                "fire_at": 10_000}, None)  # plain FullMEB
        armed_result = run_fault_window(armed, items=4, window=60)
        healthy_result = run_fault_window(healthy, items=4, window=60)
        assert armed_result["delivered"] == healthy_result["delivered"] == 8

    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="fault must be one of"):
            _build_fault({"fault": "bitrot"}, None)


# ----------------------------------------------------------------------
# campaign-level determinism and summary folding
# ----------------------------------------------------------------------

class TestFuzzCampaign:
    def test_bit_identical_across_workers_and_engines(self):
        spec = from_dict(FUZZ_CAMPAIGN)
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=4)
        event = run_campaign(spec, workers=1, engine="event")
        assert canonical_report(serial) == canonical_report(sharded)
        metrics = lambda r: {  # noqa: E731
            row["key"]: row["metrics"] for row in r["scenarios"]
        }
        assert metrics(serial) == metrics(event)

    def test_summary_folds_coverage_and_oracles(self):
        report = run_campaign(from_dict(FUZZ_CAMPAIGN), workers=1)
        summary = report["summary"]
        assert summary["failed"] == 0
        assert 0 < summary["coverage_pct"] <= 100
        assert summary["new_states"] > 0
        oracles = summary["fault_oracles"]
        assert oracles["scenarios"] == len(FAULT_KINDS)
        assert oracles["passed"] == oracles["scenarios"]
        assert oracles["pass_rate"] == 1.0
        assert summary["faults_survived"] == sum(
            1 for expected, _d in FAULT_KINDS.values()
            if expected == "survived"
        )


# ----------------------------------------------------------------------
# the coverage regression gate
# ----------------------------------------------------------------------

class TestCoverageRegressionGate:
    """benchmarks/check_coverage_regression.py — the fuzz-level gate."""

    @staticmethod
    def _gate():
        spec = importlib.util.spec_from_file_location(
            "check_coverage_regression",
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "check_coverage_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _report():
        return {
            "campaign": {"name": "t", "seed": 1, "engine": None, "workers": 1},
            "summary": {
                "coverage_pct": 50.0,
                "fault_oracles": {"scenarios": 2, "passed": 2,
                                  "pass_rate": 1.0},
            },
            "scenarios": [
                {
                    "key": "fuzz(base=mt_pipeline,threads=2)/fuzz",
                    "status": "ok",
                    "metrics": {"coverage_pct": 50.0, "new_states": 40,
                                "mutants_kept": 5},
                },
                {
                    "key": "fault(fault=drop,threads=2)/inject",
                    "status": "ok",
                    "metrics": {"oracle_ok": True},
                },
            ],
        }

    def test_identical_reports_pass(self):
        gate = self._gate()
        lines, regressions = gate.compare(self._report(), self._report(), 0.25)
        assert not regressions
        assert any("✅" in line for line in lines)

    def test_coverage_drop_and_oracle_flip_regress(self):
        gate = self._gate()
        current = self._report()
        current["scenarios"][0]["metrics"]["coverage_pct"] = 30.0  # -40%
        current["scenarios"][1]["metrics"]["oracle_ok"] = False
        current["summary"]["coverage_pct"] = 30.0
        current["summary"]["fault_oracles"]["pass_rate"] = 0.5
        _lines, regressions = gate.compare(self._report(), current, 0.25)
        assert len(regressions) == 4
        assert any("cov %" in msg for msg in regressions)
        assert any("oracle" in msg for msg in regressions)
        assert any("pass rate" in msg for msg in regressions)

    def test_missing_scenario_regresses_new_not_gated(self):
        gate = self._gate()
        current = self._report()
        current["scenarios"][1]["status"] = "error"
        current["scenarios"].append({
            "key": "fault(fault=duplicate,threads=2)/inject",
            "status": "ok",
            "metrics": {"oracle_ok": True},
        })
        lines, regressions = gate.compare(self._report(), current, 0.25)
        assert regressions and "missing or failed" in regressions[0]
        assert any("not gated" in line for line in lines)

    def test_main_writes_delta_and_exit_codes(self, tmp_path, monkeypatch):
        gate = self._gate()
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(self._report()), encoding="utf-8")
        cur_path.write_text(json.dumps(self._report()), encoding="utf-8")
        monkeypatch.delenv("BENCH_TOLERANCE", raising=False)
        assert gate.main(["x", str(base_path), str(cur_path)]) == 0
        assert (tmp_path / "coverage_regression_delta.md").exists()
        bad = self._report()
        bad["summary"]["coverage_pct"] = 1.0
        cur_path.write_text(json.dumps(bad), encoding="utf-8")
        assert gate.main(["x", str(base_path), str(cur_path)]) == 1
        assert gate.main(["x", str(base_path), str(tmp_path / "nope")]) == 2
