"""Tests for MT traffic endpoints: MTSource and MTSink."""

import pytest

from repro.core import FullMEB, GrantPolicy, MTChannel, MTSink, MTSource
from repro.kernel import build

from tests.conftest import make_mt_pipeline


def direct_link(items, src_patterns=None, sink_patterns=None,
                policy=GrantPolicy.MASKED_FALLBACK):
    ch = MTChannel("ch", threads=len(items), width=16)
    src = MTSource("src", ch, items=items, patterns=src_patterns,
                   policy=policy)
    sink = MTSink("snk", ch, patterns=sink_patterns)
    sim = build(ch, src, sink)
    return sim, src, sink


class TestMTSource:
    def test_stream_count_must_match_threads(self):
        ch = MTChannel("ch", threads=3)
        with pytest.raises(ValueError):
            MTSource("src", ch, items=[[1], [2]])

    def test_one_item_per_cycle(self):
        sim, _src, sink = direct_link([[1, 2], [3, 4]])
        sim.run(cycles=4)
        assert sink.count == 4  # exactly one transfer per cycle

    def test_round_robin_interleaving(self):
        sim, _src, sink = direct_link([[1, 2], [3, 4]])
        sim.run(cycles=4)
        threads = [t for _c, t, _d in sink.received]
        assert threads == [0, 1, 0, 1]

    def test_exhaustion(self):
        sim, src, sink = direct_link([[1], [2]])
        assert not src.exhausted
        sim.run(cycles=3)
        assert src.exhausted
        assert src.pending(0) == 0

    def test_push_mid_simulation(self):
        sim, src, sink = direct_link([[], []])
        sim.run(cycles=2)
        assert sink.count == 0
        src.push(1, "late")
        sim.run(cycles=3)
        assert sink.values_for(1) == ["late"]

    def test_block_unblock(self):
        sim, src, sink = direct_link([[1, 2, 3], []])
        src.block(0)
        sim.run(cycles=4)
        assert sink.count == 0
        src.unblock(0)
        sim.run(cycles=4)
        assert sink.values_for(0) == [1, 2, 3]

    def test_per_thread_injection_patterns(self):
        sim, _src, sink = direct_link(
            [["a"], ["b"]],
            src_patterns=[None, lambda c: c >= 5],
        )
        sim.run(cycles=5)
        assert sink.values_for(0) == ["a"]
        assert sink.count_for(1) == 0
        sim.run(cycles=3)
        assert sink.values_for(1) == ["b"]

    def test_sent_records(self):
        sim, src, _sink = direct_link([[1], [2]])
        sim.run(cycles=3)
        assert src.sent_by_thread(0) == [1]
        assert src.sent_by_thread(1) == [2]
        assert len(src.sent) == 2

    def test_reset_restores_streams(self):
        sim, src, sink = direct_link([[1, 2], []])
        sim.run(cycles=3)
        assert sink.count == 2
        sim.reset()
        sim.run(cycles=3)
        assert sink.values_for(0) == [1, 2]

    def test_unmasked_policy_presents_without_ready(self):
        sim, src, sink = direct_link(
            [[1], []], sink_patterns=[lambda c: False, None],
            policy=GrantPolicy.UNMASKED,
        )
        sim.run(cycles=2)
        sim.settle()
        assert sim.signal_by_name("ch.valid0").value is True
        assert sink.count == 0


class TestMTSink:
    def test_per_thread_stall_patterns(self):
        sim, _src, sink = direct_link(
            [[1, 2], [3, 4]],
            sink_patterns=[None, lambda c: c >= 6],
        )
        sim.run(cycles=6)
        assert sink.values_for(0) == [1, 2]
        assert sink.count_for(1) == 0
        sim.run(cycles=4)
        assert sink.values_for(1) == [3, 4]

    def test_received_carries_cycle_thread_data(self):
        sim, _src, sink = direct_link([["x"], []])
        sim.run(cycles=2)
        cycle, thread, data = sink.received[0]
        assert thread == 0
        assert data == "x"
        assert cycle >= 0

    def test_cycles_for(self):
        sim, _src, sink = direct_link([[1, 2], []])
        sim.run(cycles=4)
        assert sink.cycles_for(0) == [0, 1]

    def test_reset_clears_received(self):
        sim, _src, sink = direct_link([[1], []])
        sim.run(cycles=2)
        sim.reset()
        assert sink.count == 0


class TestEndToEndGating:
    def test_dynamic_push_through_pipeline(self):
        """Sources accept pushes while the pipeline is running — the MD5
        driver's injection mechanism."""
        sim, src, sink, _mebs, _mons = make_mt_pipeline(
            FullMEB, threads=2, items=[[], []], n_stages=2
        )
        for wave in range(3):
            src.push(0, f"a{wave}")
            src.push(1, f"b{wave}")
            sim.run(until=lambda s: sink.count == 2 * (wave + 1),
                    max_cycles=50)
        assert sink.values_for(0) == ["a0", "a1", "a2"]
        assert sink.values_for(1) == ["b0", "b1", "b2"]
