"""Tests for single-thread sources, sinks and the pattern helpers."""

import pytest

from repro.elastic import (
    ChannelMonitor,
    ElasticChannel,
    Sink,
    Source,
    duty_cycle,
    stall_window,
)
from repro.elastic.endpoints import _pattern_fn
from repro.kernel import build


def direct(items, src_pattern=None, sink_pattern=None, **src_kwargs):
    ch = ElasticChannel("ch", width=16)
    src = Source("src", ch, items=items, pattern=src_pattern, **src_kwargs)
    sink = Sink("snk", ch, pattern=sink_pattern)
    mon = ChannelMonitor("mon", ch)
    sim = build(ch, src, sink, mon)
    return sim, src, sink, mon


class TestPatternHelpers:
    def test_none_is_always_on(self):
        fn = _pattern_fn(None)
        assert all(fn(c) for c in range(10))

    def test_sequence_is_cyclic(self):
        fn = _pattern_fn([True, False])
        assert [fn(c) for c in range(4)] == [True, False, True, False]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            _pattern_fn([])

    def test_callable_passthrough(self):
        fn = _pattern_fn(lambda c: c > 2)
        assert not fn(0)
        assert fn(3)

    def test_stall_window(self):
        fn = stall_window(2, 4)
        assert [fn(c) for c in range(6)] == [True, True, False, False,
                                             True, True]

    def test_duty_cycle(self):
        fn = duty_cycle(1, 3)
        assert [fn(c) for c in range(6)] == [True, False, False,
                                             True, False, False]

    def test_duty_cycle_phase(self):
        fn = duty_cycle(1, 3, phase=1)
        assert fn(2)
        assert not fn(0)

    def test_duty_cycle_bounds_checked(self):
        with pytest.raises(ValueError):
            duty_cycle(4, 3)
        with pytest.raises(ValueError):
            duty_cycle(1, 0)


class TestSource:
    def test_items_xor_generate(self):
        ch = ElasticChannel("ch")
        with pytest.raises(ValueError):
            Source("s", ch, items=[1], generate=lambda k: k)
        with pytest.raises(ValueError):
            Source("s2", ElasticChannel("ch2"))

    def test_generate_with_count(self):
        ch = ElasticChannel("ch", width=8)
        src = Source("src", ch, generate=lambda k: k * k, count=4)
        sink = Sink("snk", ch)
        sim = build(ch, src, sink)
        sim.run(until=lambda s: sink.count == 4, max_cycles=20)
        assert sink.values() == [0, 1, 4, 9]

    def test_infinite_generate(self):
        ch = ElasticChannel("ch", width=8)
        src = Source("src", ch, generate=lambda k: k, count=None)
        sink = Sink("snk", ch)
        sim = build(ch, src, sink)
        sim.run(cycles=10)
        assert sink.count == 10
        assert not src.exhausted
        assert src.remaining is None

    def test_push(self):
        sim, src, sink, _mon = direct([])
        sim.run(cycles=2)
        src.push("later")
        sim.run(cycles=2)
        assert sink.values() == ["later"]

    def test_push_rejected_for_generator_source(self):
        ch = ElasticChannel("ch")
        src = Source("src", ch, generate=lambda k: k, count=1)
        with pytest.raises(ValueError):
            src.push(5)

    def test_offer_persists_through_pattern_gap(self):
        # Gate opens only at cycle 0 of every 5; sink stalls 3 cycles:
        # the offer must persist (monitor enforces) and transfer later.
        sim, _src, sink, mon = direct(
            [1], src_pattern=duty_cycle(1, 5),
            sink_pattern=lambda c: c >= 3,
        )
        sim.run(until=lambda s: sink.count == 1, max_cycles=20)
        assert mon.transfer_count == 1
        assert sink.received == [(3, 1)]

    def test_sent_records(self):
        sim, src, _sink, _mon = direct([7, 8])
        sim.run(cycles=3)
        assert [d for _c, d in src.sent] == [7, 8]

    def test_exhausted_and_remaining(self):
        sim, src, _sink, _mon = direct([1, 2, 3])
        assert src.remaining == 3
        sim.run(cycles=5)
        assert src.exhausted
        assert src.remaining == 0


class TestSink:
    def test_limit_stops_acceptance(self):
        sim, _src, sink, _mon = direct([1, 2, 3, 4])
        sink._limit = 2
        sim.run(cycles=10)
        assert sink.count == 2

    def test_limit_constructor(self):
        ch = ElasticChannel("ch", width=8)
        src = Source("src", ch, items=[1, 2, 3])
        sink = Sink("snk", ch, limit=1)
        sim = build(ch, src, sink)
        sim.run(cycles=6)
        assert sink.values() == [1]

    def test_arrival_cycles(self):
        sim, _src, sink, _mon = direct([5, 6])
        sim.run(cycles=4)
        assert sink.arrival_cycles() == [0, 1]

    def test_reset(self):
        sim, _src, sink, _mon = direct([1])
        sim.run(cycles=2)
        sim.reset()
        assert sink.count == 0
        sim.run(cycles=2)
        assert sink.values() == [1]
