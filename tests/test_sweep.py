"""The campaign subsystem: specs, registry, runner, report, CLI.

The load-bearing property is at the bottom of the file: a sharded
multiprocess campaign and a serial single-process campaign — and runs
under different settle engines — produce bit-identical per-scenario
metrics, because scenario seeds derive from (campaign seed, scenario
key) alone and the engines are cycle-identical.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.sweep import (
    SweepSpecError,
    family_names,
    get_family,
    load_spec,
    make_scenario,
    run_campaign,
)
from repro.sweep.registry import Family, register_family
from repro.sweep.report import render_markdown, write_report
from repro.sweep.runner import run_scenarios, shard_scenarios
from repro.sweep.spec import from_dict

#: A small but representative campaign: three families, grids over
#: structural and stimulus axes, one seeded-random traffic scenario.
SMALL_CAMPAIGN = {
    "campaign": {"name": "test", "seed": 7, "workers": 2},
    "scenarios": [
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2},
            "grid": {"meb": ["full", "reduced"]},
            "stimulus": {"kind": "uniform", "items_per_thread": 8},
            "metrics": {"warmup": 4, "drain": 2},
        },
        {
            "family": "mt_pipeline",
            "params": {"threads": 2, "n_stages": 2, "meb": "full"},
            "stimulus": {"kind": "random", "items_min": 2, "items_max": 9},
        },
        {
            "family": "mt_chain",
            "params": {"threads": 2, "n_funcs": 2},
            "stimulus": {"kind": "uniform", "items_per_thread": 6},
        },
        {
            "family": "mt_ring",
            "params": {"threads": 2, "n_funcs": 1, "trips": 3},
            "stimulus": {"kind": "uniform", "items_per_thread": 2},
        },
    ],
}


def _metrics_by_key(report):
    return {
        row["key"]: row["metrics"] for row in report["scenarios"]
        if row["status"] == "ok"
    }


class TestSpec:
    def test_grid_expansion_cross_product(self):
        spec = from_dict(
            {
                "campaign": {"name": "g", "seed": 1},
                "scenarios": [
                    {
                        "family": "mt_pipeline",
                        "grid": {
                            "threads": [2, 4],
                            "meb": ["full", "reduced"],
                            "stimulus.active": [1, 2],
                        },
                        "stimulus": {"kind": "active"},
                    }
                ],
            }
        )
        assert len(spec.scenarios) == 8
        keys = {sc.key for sc in spec.scenarios}
        assert len(keys) == 8  # all distinct
        # Stimulus axes land in the stimulus block, not the params.
        for sc in spec.scenarios:
            assert "active" in sc.stimulus
            assert "active" not in sc.params
        # 4 distinct designs (stimulus axes don't change the build).
        assert len({sc.design_key() for sc in spec.scenarios}) == 4

    def test_seed_depends_on_scenario_not_position(self):
        spec_a = from_dict(SMALL_CAMPAIGN)
        reordered = dict(SMALL_CAMPAIGN)
        reordered["scenarios"] = list(reversed(SMALL_CAMPAIGN["scenarios"]))
        spec_b = from_dict(reordered)
        seeds_a = {sc.key: sc.seed for sc in spec_a.scenarios}
        seeds_b = {sc.key: sc.seed for sc in spec_b.scenarios}
        assert seeds_a == seeds_b

    def test_make_scenario_matches_campaign_seed(self):
        spec = from_dict(SMALL_CAMPAIGN)
        declared = spec.scenario(
            "mt_chain(n_funcs=2,threads=2)/uniform"
        )
        adhoc = make_scenario(
            "mt_chain",
            params={"threads": 2, "n_funcs": 2},
            stimulus={"kind": "uniform", "items_per_thread": 6},
            seed=7,
        )
        assert adhoc.seed == declared.seed
        assert adhoc.key == declared.key

    def test_spec_errors(self):
        with pytest.raises(SweepSpecError):
            from_dict({"campaign": {}})  # no scenarios
        with pytest.raises(SweepSpecError):
            from_dict({"scenarios": [{"params": {}}]})  # no family
        with pytest.raises(SweepSpecError):
            from_dict(
                {"scenarios": [{"family": "x", "grid": {"threads": []}}]}
            )
        with pytest.raises(SweepSpecError):
            from_dict(
                {"scenarios": [{"family": "x", "typo_block": {}}]}
            )

    def test_spec_errors_are_structured(self):
        from repro.sweep.spec import SpecError

        # SweepSpecError is the backwards-compatible alias.
        assert SpecError is SweepSpecError
        with pytest.raises(SpecError) as excinfo:
            from_dict({"scenarios": [{"params": {}}]})
        err = excinfo.value
        assert err.path == "scenarios[0]"
        assert err.field == "family"
        assert err.to_dict() == {
            "path": "scenarios[0]",
            "field": "family",
            "reason": err.reason,
        }
        # The rendered message is built from the same three fields the
        # HTTP 400 body carries — one source for both surfaces.
        assert str(err) == f"scenarios[0].family: {err.reason}"

        with pytest.raises(SpecError) as excinfo:
            from_dict(
                {"scenarios": [{"family": "x", "grid": {"threads": []}}]}
            )
        assert excinfo.value.field == "grid.threads"

    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(SMALL_CAMPAIGN), encoding="utf-8")
        spec = load_spec(path)
        assert spec.name == "test"
        assert len(spec.scenarios) == 5

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs Python 3.11+"
    )
    def test_load_toml_spec(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            '[campaign]\nname = "t"\nseed = 3\n\n'
            '[[scenarios]]\nfamily = "mt_chain"\n'
            "params = { threads = 2, n_funcs = 1 }\n"
            'stimulus = { kind = "uniform", items_per_thread = 4 }\n',
            encoding="utf-8",
        )
        spec = load_spec(path)
        assert spec.scenarios[0].family == "mt_chain"

    def test_example_campaign_spec_is_valid(self):
        if sys.version_info < (3, 11):
            pytest.skip("tomllib needs Python 3.11+")
        spec = load_spec(
            pathlib.Path(__file__).resolve().parents[1]
            / "examples" / "campaigns" / "paper_sweep.toml"
        )
        # The acceptance shape: >= 3 design families x >= 4 points.
        families = {sc.family for sc in spec.scenarios}
        assert len(families) >= 3
        for family in families:
            assert (
                sum(1 for sc in spec.scenarios if sc.family == family) >= 4
            )
        for sc in spec.scenarios:
            get_family(sc.family)  # every family resolves


class TestRegistry:
    def test_builtin_families_registered(self):
        names = family_names()
        for expected in (
            "mt_pipeline", "mt_chain", "mt_ring", "md5", "processor",
        ):
            assert expected in names

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown design family"):
            get_family("warp_drive")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_family(
                Family(name="mt_pipeline", build=None, run=None)
            )


class TestRunner:
    def test_sharding_groups_designs(self):
        spec = from_dict(SMALL_CAMPAIGN)
        shards = shard_scenarios(spec, 2)
        assert sum(len(s) for s in shards) == len(spec.scenarios)
        # Scenarios of one design key never split across shards.
        for key in {sc.design_key() for sc in spec.scenarios}:
            holders = [
                i for i, shard in enumerate(shards)
                if any(sc.design_key() == key for sc in shard)
            ]
            assert len(holders) == 1

    def test_serial_campaign_runs_and_reuses_designs(self):
        spec = from_dict(SMALL_CAMPAIGN)
        report = run_campaign(spec, workers=1)
        assert report["summary"]["failed"] == 0
        assert report["summary"]["ok"] == 5
        # Rows come back in spec order regardless of grouping.
        assert [r["index"] for r in report["scenarios"]] == list(range(5))

    def test_sharded_equals_serial(self):
        spec = from_dict(SMALL_CAMPAIGN)
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=2)
        assert _metrics_by_key(serial) == _metrics_by_key(sharded)
        shards_used = {r["shard"] for r in sharded["scenarios"]}
        assert len(shards_used) == 2  # it really ran on two workers

    def test_engines_agree(self):
        spec = from_dict(SMALL_CAMPAIGN)
        event = run_campaign(spec, workers=1, engine="event")
        compiled = run_campaign(spec, workers=2, engine="compiled")
        assert _metrics_by_key(event) == _metrics_by_key(compiled)

    def test_scenario_failure_is_contained(self):
        register_family(
            Family(
                name="_always_fails",
                build=lambda params, engine: object(),
                run=lambda handle, sc: (_ for _ in ()).throw(
                    RuntimeError("boom")
                ),
                reusable=False,
            )
        )
        try:
            spec = from_dict(
                {
                    "campaign": {"name": "f", "seed": 1},
                    "scenarios": [
                        {"family": "_always_fails"},
                        {
                            "family": "mt_chain",
                            "params": {"threads": 2, "n_funcs": 1},
                            "stimulus": {
                                "kind": "uniform", "items_per_thread": 3,
                            },
                        },
                    ],
                }
            )
            report = run_campaign(spec, workers=1)
        finally:
            from repro.sweep.registry import _REGISTRY

            _REGISTRY.pop("_always_fails", None)
        rows = {r["key"]: r for r in report["scenarios"]}
        failed = rows["_always_fails()/uniform"]
        assert failed["status"] == "error"
        assert "boom" in failed["error"]
        ok = [r for r in report["scenarios"] if r["status"] == "ok"]
        assert len(ok) == 1  # the healthy scenario still ran

    def test_unknown_family_reported_not_raised(self):
        spec = from_dict(
            {
                "campaign": {"name": "u", "seed": 1},
                "scenarios": [{"family": "warp_drive"}],
            }
        )
        report = run_campaign(spec, workers=1)
        row = report["scenarios"][0]
        assert row["status"] == "error"
        assert "unknown design family" in row["error"]

    def test_fork_variant_scenarios(self):
        scenario = make_scenario(
            "mt_pipeline",
            params={"threads": 2, "n_stages": 2, "meb": "full"},
            stimulus={
                "kind": "uniform",
                "base": {"kind": "uniform", "items_per_thread": 4},
                "warmup_cycles": 10,
                "variants": [
                    {"kind": "uniform", "items_per_thread": 2},
                    {"kind": "active", "active": 1,
                     "items_per_thread": 6},
                ],
            },
            metrics={"window": "full"},
        )
        rows_a = run_scenarios([scenario], engine="compiled")
        rows_b = run_scenarios([scenario], engine="event")
        assert rows_a[0]["status"] == "ok", rows_a[0].get("error")
        variants = rows_a[0]["metrics"]["variants"]
        assert [v["variant"] for v in variants] == [0, 1]
        # Each variant replayed from the same branch point, so variant
        # metrics are engine-invariant and mutually independent.
        assert rows_a[0]["metrics"] == rows_b[0]["metrics"]


class TestReportAndCLI:
    def test_report_render_and_write(self, tmp_path):
        spec = from_dict(SMALL_CAMPAIGN)
        report = run_campaign(spec, workers=1)
        md = render_markdown(report)
        assert "# Campaign `test`" in md
        assert "mt_pipeline" in md and "mt_ring" in md
        json_path, md_path = write_report(report, tmp_path, "camp")
        loaded = json.loads(json_path.read_text(encoding="utf-8"))
        assert loaded["summary"]["ok"] == 5
        assert md_path.read_text(encoding="utf-8") == md

    def test_cli_run_and_validate(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        path = tmp_path / "c.json"
        path.write_text(json.dumps(SMALL_CAMPAIGN), encoding="utf-8")
        out_dir = tmp_path / "results"
        rc = main([
            "run", str(path), "--workers", "1", "--out", str(out_dir),
            "--name", "smoke",
        ])
        assert rc == 0
        assert (out_dir / "smoke.json").exists()
        assert (out_dir / "smoke.md").exists()
        assert "5/5 scenarios ok" in capsys.readouterr().out

        assert main(["validate", str(path)]) == 0
        assert "5 scenarios" in capsys.readouterr().out

        assert main(["families"]) == 0
        assert "mt_pipeline" in capsys.readouterr().out

    def test_cli_failure_exit_code(self, tmp_path):
        from repro.sweep.__main__ import main

        bad = {
            "campaign": {"name": "bad", "seed": 1},
            "scenarios": [{"family": "warp_drive"}],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad), encoding="utf-8")
        assert main([
            "run", str(path), "--workers", "1",
            "--out", str(tmp_path / "r"),
        ]) == 1

    def test_cli_spec_error_exit_codes(self, tmp_path, capsys):
        """Exit codes are normalized: 2 = spec/usage error, nothing ran."""
        from repro.sweep.__main__ import main

        # Missing spec file: exit 2, structured message on stderr.
        assert main(["run", str(tmp_path / "missing.toml")]) == 2
        assert "spec error:" in capsys.readouterr().err

        # Structurally invalid spec: exit 2 from run and validate alike.
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps({"scenarios": [{"params": {}}]}), encoding="utf-8"
        )
        assert main(["run", str(path)]) == 2
        assert "scenarios[0].family" in capsys.readouterr().err
        assert main(["validate", str(path)]) == 2
        capsys.readouterr()

        # Unresolvable family: validate treats it as a spec problem (2),
        # run treats it as a scenario failure (1) — documented split.
        unknown = tmp_path / "unknown.json"
        unknown.write_text(json.dumps({
            "campaign": {"name": "u", "seed": 1},
            "scenarios": [{"family": "warp_drive"}],
        }), encoding="utf-8")
        assert main(["validate", str(unknown)]) == 2

    def test_cli_families_json(self, capsys):
        from repro.sweep.__main__ import main
        from repro.sweep.registry import registry_payload

        assert main(["families", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == registry_payload()
        chain = payload["families"]["mt_chain"]
        assert set(chain) == {
            "reusable", "description", "params", "stimulus_kinds",
            "ensemble",
        }
        assert chain["params"]["threads"] == 4
        assert "uniform" in chain["stimulus_kinds"]

    def test_canonical_report_strips_placement_only(self):
        from repro.sweep.report import canonical_report

        spec = from_dict(SMALL_CAMPAIGN)
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=2)
        assert canonical_report(serial) == canonical_report(sharded)
        # Metrics differences must still show through.
        mutated = json.loads(json.dumps(serial))
        mutated["scenarios"][0]["metrics"]["cycles"] = -1
        assert canonical_report(mutated) != canonical_report(serial)


class TestSweepRegressionGate:
    """benchmarks/check_sweep_regression.py — the campaign-level gate."""

    @staticmethod
    def _gate():
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_sweep_regression",
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "check_sweep_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _report(**overrides):
        base = {
            "campaign": {"name": "t", "seed": 1, "engine": None, "workers": 1},
            "summary": {},
            "scenarios": [
                {
                    "key": "mt_pipeline(threads=2)/uniform",
                    "status": "ok",
                    "metrics": {"cycles": 100, "utilization": 0.8},
                },
                {
                    "key": "processor(threads=2)/bursty[kind=bursty]",
                    "status": "ok",
                    "metrics": {"cycles": 500, "ipc": 1.5},
                },
            ],
        }
        base.update(overrides)
        return base

    def test_identical_reports_pass(self):
        gate = self._gate()
        lines, regressions = gate.compare(self._report(), self._report(), 0.25)
        assert not regressions
        assert any("✅" in line for line in lines)

    def test_cycle_rise_and_ipc_drop_regress(self):
        gate = self._gate()
        current = self._report()
        current["scenarios"][0]["metrics"]["cycles"] = 150   # +50% cycles
        current["scenarios"][1]["metrics"]["ipc"] = 1.0      # -33% ipc
        lines, regressions = gate.compare(self._report(), current, 0.25)
        assert len(regressions) == 2
        assert any("cycles" in msg for msg in regressions)
        assert any("ipc" in msg for msg in regressions)

    def test_vanished_gated_metric_regresses(self):
        gate = self._gate()
        current = self._report()
        del current["scenarios"][0]["metrics"]["cycles"]  # shape drift
        _lines, regressions = gate.compare(self._report(), current, 0.25)
        assert regressions and "missing from the current report" in regressions[0]

    def test_missing_or_failed_scenario_regresses(self):
        gate = self._gate()
        current = self._report()
        current["scenarios"][1]["status"] = "error"
        _lines, regressions = gate.compare(self._report(), current, 0.25)
        assert regressions and "missing or failed" in regressions[0]

    def test_new_scenario_not_gated(self):
        gate = self._gate()
        current = self._report()
        current["scenarios"].append({
            "key": "mt_ring(trips=2)/uniform",
            "status": "ok",
            "metrics": {"cycles": 10},
        })
        lines, regressions = gate.compare(self._report(), current, 0.25)
        assert not regressions
        assert any("not gated" in line for line in lines)

    def test_main_writes_delta_and_exit_codes(self, tmp_path, monkeypatch):
        gate = self._gate()
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(self._report()), encoding="utf-8")
        current = self._report()
        cur_path.write_text(json.dumps(current), encoding="utf-8")
        monkeypatch.delenv("BENCH_TOLERANCE", raising=False)
        assert gate.main(["x", str(base_path), str(cur_path)]) == 0
        assert (tmp_path / "sweep_regression_delta.md").exists()
        current["scenarios"][0]["metrics"]["cycles"] = 1000
        cur_path.write_text(json.dumps(current), encoding="utf-8")
        assert gate.main(["x", str(base_path), str(cur_path)]) == 1
        assert gate.main(["x", str(tmp_path / "nope.json"), str(cur_path)]) == 2

    def test_committed_baseline_matches_a_fresh_campaign_run(self):
        """The acceptance property: the example campaign reproduces the
        committed BENCH_sweep.json scenario metrics bit-for-bit."""
        if sys.version_info < (3, 11):
            pytest.skip("tomllib needs Python 3.11+")
        gate = self._gate()
        root = pathlib.Path(__file__).parent.parent
        baseline = json.loads(
            (root / "BENCH_sweep.json").read_text(encoding="utf-8")
        )
        spec = load_spec(root / "examples" / "campaigns" / "paper_sweep.toml")
        report = run_campaign(spec, workers=1)
        _lines, regressions = gate.compare(baseline, report, 0.0)
        assert not regressions
