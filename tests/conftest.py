"""Shared fixtures/helpers for the test suite."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.core import (
    FullMEB,
    GrantPolicy,
    MTChannel,
    MTMonitor,
    MTSink,
    MTSource,
    ReducedMEB,
)
from repro.elastic.endpoints import Pattern
from repro.kernel import build


def make_mt_pipeline(
    meb_cls,
    threads: int,
    items: Sequence[Iterable[Any]],
    n_stages: int = 2,
    src_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    sink_patterns: Sequence[Pattern] | Mapping[int, Pattern] | None = None,
    policy: GrantPolicy = GrantPolicy.MASKED_FALLBACK,
    width: int = 32,
    engine: str | None = None,
):
    """source -> MEB^n_stages -> sink with a monitor on every channel.

    Returns ``(sim, source, sink, mebs, monitors)`` where ``monitors[k]``
    watches the channel *after* stage k-1 (monitors[0] watches the input
    channel).
    """
    chans = [
        MTChannel(f"ch{i}", threads=threads, width=width)
        for i in range(n_stages + 1)
    ]
    source = MTSource("src", chans[0], items=items, patterns=src_patterns)
    mebs = [
        meb_cls(f"meb{i}", chans[i], chans[i + 1], policy=policy)
        for i in range(n_stages)
    ]
    sink = MTSink("snk", chans[-1], patterns=sink_patterns)
    monitors = [MTMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, source, *mebs, sink, *monitors, engine=engine)
    return sim, source, sink, mebs, monitors


MEB_CLASSES = [FullMEB, ReducedMEB]
