"""The per-opcode execute table is pinned to the reference interpreter.

``Processor._execute`` dispatches through ``_EXEC_FNS`` — one generated
straight-line function per opcode with the format branches and the ALU
dispatch folded out.  These tests sweep every opcode over adversarial
operand values and assert token-for-token equality with
``_execute_interp`` (the original if/elif interpreter, kept exactly for
this purpose), then run a full program through the pipeline.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.apps.processor import isa
from repro.apps.processor.core import _EXEC_FNS, Processor, _execute_interp
from repro.apps.processor.stages import DecodedToken

#: Operand corners: zero, small, shift-relevant, sign-boundary, all-ones.
VALUES = (
    0, 1, 3, 4, 31, 32, 33, 0x7FFF, 0x8000, 0xFFFF, 0x10000,
    0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x12345678, 0xDEADBEEF,
)


def _instr_for(op: isa.Op, rng: random.Random) -> isa.Instruction:
    fmt = isa.FORMATS[op]
    imm = rng.randint(-(1 << 15), (1 << 15) - 1)
    if fmt is isa.Format.R:
        return isa.Instruction(op, rd=1, rs1=2, rs2=3)
    if fmt is isa.Format.I:
        return isa.Instruction(op, rd=1, rs1=2, imm=imm)
    if fmt is isa.Format.B:
        return isa.Instruction(op, rs1=2, rs2=3, imm=imm)
    return isa.Instruction(op)


@pytest.mark.parametrize("op", list(isa.Op), ids=lambda op: op.name)
def test_exec_table_matches_interpreter(op):
    rng = random.Random(op.value)
    for a, b in itertools.product(VALUES, VALUES):
        instr = _instr_for(op, rng)
        token = DecodedToken(
            pc=rng.choice((0, 0x1000, 0x7FFC)), instr=instr, a=a, b=b,
            store_value=rng.randint(0, 0xFFFFFFFF),
        )
        assert _EXEC_FNS[op](token) == _execute_interp(token)


def test_exec_table_covers_every_opcode():
    assert set(_EXEC_FNS) == set(isa.Op)


def test_pipeline_program_with_exec_table():
    proc = Processor(threads=2)
    program = """
        addi x1, x0, 5
        addi x2, x0, 0
    loop:
        add  x2, x2, x1
        addi x1, x1, -1
        bne  x1, x0, loop
        sw   x2, x0, 0
        halt
    """
    for t in range(2):
        proc.load_program(t, program)
    stats = proc.run()
    assert stats.retired == [19, 19]
    for t in range(2):
        assert proc.mem_word(t, 0) == 15  # 5+4+3+2+1
