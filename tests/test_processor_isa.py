"""Tests for the processor ISA: encoding, ALU semantics, assembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.processor import (
    AssemblyError,
    Format,
    Instruction,
    Op,
    alu,
    assemble,
    branch_taken,
    decode,
    disassemble,
    encode,
)
from repro.apps.processor.isa import FORMATS, MASK32, is_branch, is_jump, is_mem


class TestInstruction:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=32)

    def test_imm_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADDI, rd=1, rs1=0, imm=40000)

    def test_str_forms(self):
        assert str(Instruction(Op.ADD, 1, 2, 3)) == "add x1, x2, x3"
        assert str(Instruction(Op.ADDI, 1, 0, imm=-5)) == "addi x1, x0, -5"
        assert str(Instruction(Op.HALT)) == "halt"

    def test_every_op_has_format(self):
        for op in Op:
            assert op in FORMATS


class TestEncoding:
    def test_rtype_roundtrip(self):
        instr = Instruction(Op.SUB, rd=3, rs1=7, rs2=31)
        assert decode(encode(instr)) == instr

    def test_itype_negative_imm_roundtrip(self):
        instr = Instruction(Op.ADDI, rd=5, rs1=2, imm=-300)
        assert decode(encode(instr)) == instr

    def test_btype_roundtrip(self):
        instr = Instruction(Op.BNE, rs1=4, rs2=9, imm=-12)
        assert decode(encode(instr)) == instr

    def test_illegal_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode(63 << 26)

    def test_word_is_32_bits(self):
        instr = Instruction(Op.MUL, rd=31, rs1=31, rs2=31)
        assert 0 <= encode(instr) <= MASK32


@settings(max_examples=200, deadline=None)
@given(
    op=st.sampled_from(list(Op)),
    rd=st.integers(0, 31),
    rs1=st.integers(0, 31),
    rs2=st.integers(0, 31),
    imm=st.integers(-(1 << 15), (1 << 15) - 1),
)
def test_encode_decode_roundtrip_property(op, rd, rs1, rs2, imm):
    fmt = FORMATS[op]
    if fmt is Format.R:
        instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2)
    elif fmt is Format.I:
        instr = Instruction(op, rd=rd, rs1=rs1, imm=imm)
    elif fmt is Format.B:
        instr = Instruction(op, rs1=rs1, rs2=rs2, imm=imm)
    else:
        instr = Instruction(op)
    assert decode(encode(instr)) == instr


class TestALU:
    def test_add_wraps(self):
        assert alu(Op.ADD, MASK32, 1) == 0

    def test_sub_wraps(self):
        assert alu(Op.SUB, 0, 1) == MASK32

    def test_bitwise(self):
        assert alu(Op.AND, 0b1100, 0b1010) == 0b1000
        assert alu(Op.OR, 0b1100, 0b1010) == 0b1110
        assert alu(Op.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts(self):
        assert alu(Op.SLL, 1, 4) == 16
        assert alu(Op.SRL, 0x80000000, 31) == 1
        assert alu(Op.SRA, 0x80000000, 31) == MASK32

    def test_shift_amount_masked_to_5_bits(self):
        assert alu(Op.SLL, 1, 33) == 2

    def test_slt_signed_vs_unsigned(self):
        assert alu(Op.SLT, MASK32, 0) == 1   # -1 < 0 signed
        assert alu(Op.SLTU, MASK32, 0) == 0  # max unsigned

    def test_mul_wraps(self):
        assert alu(Op.MUL, 1 << 20, 1 << 20) == (1 << 40) & MASK32

    def test_lui(self):
        assert alu(Op.LUI, 0, 5) == 5 << 16

    def test_non_alu_op_rejected(self):
        with pytest.raises(ValueError):
            alu(Op.BEQ, 1, 1)


class TestBranches:
    def test_beq_bne(self):
        assert branch_taken(Op.BEQ, 5, 5)
        assert not branch_taken(Op.BEQ, 5, 6)
        assert branch_taken(Op.BNE, 5, 6)

    def test_signed_compare(self):
        assert branch_taken(Op.BLT, MASK32, 0)   # -1 < 0
        assert branch_taken(Op.BGE, 0, MASK32)   # 0 >= -1

    def test_classifiers(self):
        assert is_branch(Op.BEQ)
        assert not is_branch(Op.JAL)
        assert is_jump(Op.JALR)
        assert is_mem(Op.LW) and is_mem(Op.SW)
        assert not is_mem(Op.ADD)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Op.ADD, 1, 1)


class TestAssembler:
    def test_basic_program(self):
        words = assemble("""
            addi x1, x0, 5
            add  x2, x1, x1
            halt
        """)
        assert len(words) == 3
        assert decode(words[0]) == Instruction(Op.ADDI, rd=1, rs1=0, imm=5)
        assert decode(words[2]) == Instruction(Op.HALT)

    def test_labels_backward_branch(self):
        words = assemble("""
        loop:
            addi x1, x1, -1
            bne  x1, x0, loop
            halt
        """)
        instr = decode(words[1])
        # Branch target: loop is 2 words back from pc+4.
        assert instr.imm == -2

    def test_labels_forward_branch(self):
        words = assemble("""
            beq x0, x0, done
            addi x1, x0, 1
        done:
            halt
        """)
        assert decode(words[0]).imm == 1

    def test_jal_absolute_label(self):
        words = assemble("""
            jal x0, target
            halt
        target:
            halt
        """, base=0)
        assert decode(words[0]).imm == 2  # word address of 'target'

    def test_jal_label_respects_base(self):
        words = assemble("""
        start:
            jal x0, start
        """, base=0x1000)
        assert decode(words[0]).imm == 0x1000 // 4

    def test_comments_and_blank_lines(self):
        words = assemble("""
            ; full line comment
            addi x1, x0, 1   # trailing comment

            halt
        """)
        assert len(words) == 2

    def test_word_directive(self):
        words = assemble(".word 0xDEADBEEF")
        assert words == [0xDEADBEEF]

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError) as exc:
            assemble("frobnicate x1, x2, x3")
        assert "unknown mnemonic" in str(exc.value)

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("addi x99, x0, 1")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add x1, x2")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblyError) as exc:
            assemble("addi x1, x0, 1\nbogus x0")
        assert exc.value.lineno == 2

    def test_disassemble_roundtrip(self):
        src_words = assemble("add x1, x2, x3\nhalt")
        text = disassemble(src_words)
        assert text == ["add x1, x2, x3", "halt"]

    def test_disassemble_data_word(self):
        assert disassemble([0xFFFFFFFF])[0].startswith(".word")
