"""Tests for the MD5 design example (paper §V-A).

The reference is checked against hashlib; the elastic circuit is checked
against the reference (and therefore transitively against hashlib), with
both MEB kinds, several thread counts, multi-block messages, and the
barrier/round-counter synchronization invariants.
"""

import hashlib
import random as _random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.md5 import (
    IV,
    MD5Circuit,
    MD5Hasher,
    MD5Token,
    MessageStore,
    md5_hex,
    md5_round,
    message_blocks,
    pad_message,
    process_block,
    rotl32,
)
from repro.apps.md5 import reference as ref
from repro.apps.md5.datapath import round_logic
from repro.kernel import SimulationError


class TestReferenceMD5:
    @pytest.mark.parametrize(
        "message",
        [
            b"",
            b"a",
            b"abc",
            b"message digest",
            b"abcdefghijklmnopqrstuvwxyz",
            b"The quick brown fox jumps over the lazy dog",
            bytes(range(256)),
            b"x" * 55,   # padding boundary: fits with length
            b"x" * 56,   # forces an extra block
            b"x" * 64,   # exactly one block of data
            b"x" * 1000,
        ],
    )
    def test_matches_hashlib(self, message):
        assert md5_hex(message) == hashlib.md5(message).hexdigest()

    def test_rfc1321_vectors(self):
        # The classic RFC 1321 appendix values.
        assert md5_hex(b"") == "d41d8cd98f00b204e9800998ecf8427e"
        assert md5_hex(b"abc") == "900150983cd24fb0d6963f7d28e17f72"

    def test_padding_length_multiple_of_64(self):
        for n in range(0, 130):
            assert len(pad_message(b"y" * n)) % 64 == 0

    def test_block_count(self):
        assert len(message_blocks(b"")) == 1
        assert len(message_blocks(b"x" * 56)) == 2
        assert len(message_blocks(b"x" * 120)) == 3

    def test_rotl32(self):
        assert rotl32(1, 1) == 2
        assert rotl32(0x80000000, 1) == 1
        assert rotl32(0xDEADBEEF, 32 - 4) == rotl32(0xDEADBEEF, -4 % 32)

    def test_process_block_composes_rounds(self):
        block = message_blocks(b"abc")[0]
        state = IV
        for r in range(4):
            state = md5_round(state, block, r)
        expected = tuple((a + b) & 0xFFFFFFFF for a, b in zip(IV, state))
        assert process_block(IV, block) == expected


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_reference_matches_hashlib_property(data):
    assert md5_hex(data) == hashlib.md5(data).hexdigest()


class TestMessageStore:
    def test_write_read_roundtrip(self):
        store = MessageStore("s", threads=2)
        block = tuple(range(16))
        store.write(1, 0, block)
        assert store.read(1, 0) == block

    def test_missing_block_raises(self):
        store = MessageStore("s", threads=2)
        with pytest.raises(SimulationError):
            store.read(0, 3)

    def test_block_size_checked(self):
        store = MessageStore("s", threads=1)
        with pytest.raises(ValueError):
            store.write(0, 0, (1, 2, 3))

    def test_ram_bits_excluded_from_le(self):
        store = MessageStore("s", threads=1)
        store.write(0, 0, tuple(range(16)))
        assert store.area_items() == []
        assert store.ram_bits == 512


class TestRoundLogic:
    def test_round_desync_detected(self):
        store = MessageStore("s", threads=1)
        store.write(0, 0, tuple(range(16)))
        token = MD5Token(IV, round_idx=1, block_ref=0)
        with pytest.raises(SimulationError) as exc:
            round_logic(token, 0, store, expected_round=0)
        assert "desync" in str(exc.value)

    def test_finished_token_rejected(self):
        store = MessageStore("s", threads=1)
        token = MD5Token(IV, round_idx=4, block_ref=0)
        with pytest.raises(SimulationError):
            round_logic(token, 0, store)

    def test_round_increments(self):
        store = MessageStore("s", threads=1)
        block = message_blocks(b"abc")[0]
        store.write(0, 0, block)
        token = MD5Token(IV, 0, 0)
        out = round_logic(token, 0, store, expected_round=0)
        assert out.round_idx == 1
        assert out.state == md5_round(IV, block, 0)


@pytest.mark.parametrize("meb", ["full", "reduced"])
class TestMD5Circuit:
    def test_single_wave_digests(self, meb):
        hasher = MD5Hasher(threads=4, meb=meb)
        msgs = [b"", b"abc", b"hello world", b"elastic"]
        assert hasher.hash_batch(msgs) == [
            hashlib.md5(m).hexdigest() for m in msgs
        ]

    def test_multi_block_messages(self, meb):
        hasher = MD5Hasher(threads=2, meb=meb)
        msgs = [b"x" * 200, b"y" * 70]  # 4 blocks and 2 blocks
        assert hasher.hash_batch(msgs) == [
            hashlib.md5(m).hexdigest() for m in msgs
        ]

    def test_partial_batch_with_dummy_threads(self, meb):
        hasher = MD5Hasher(threads=8, meb=meb)
        msgs = [b"one", b"two", b"three"]
        assert hasher.hash_batch(msgs) == [
            hashlib.md5(m).hexdigest() for m in msgs
        ]

    def test_multiple_batches(self, meb):
        hasher = MD5Hasher(threads=2, meb=meb)
        msgs = [b"a", b"b", b"c", b"d", b"e"]
        assert hasher.hash_messages(msgs) == [
            hashlib.md5(m).hexdigest() for m in msgs
        ]

    def test_oversized_batch_rejected(self, meb):
        hasher = MD5Hasher(threads=2, meb=meb)
        with pytest.raises(ValueError):
            hasher.hash_batch([b"a", b"b", b"c"])


class TestBarrierSynchronization:
    def test_barrier_releases_once_per_round(self):
        hasher = MD5Hasher(threads=4)
        hasher.hash_batch([b"r1", b"r2", b"r3", b"r4"])
        # One block per thread => exactly 4 round releases.
        assert hasher.circuit.barrier.releases == 4

    def test_round_counter_multiple_of_4_between_waves(self):
        hasher = MD5Hasher(threads=2)
        hasher.hash_batch([b"x" * 100, b"y"])  # 2 waves
        assert hasher.circuit.round_counter % 4 == 0
        assert hasher.circuit.barrier.releases == 8

    def test_loop_channel_sees_four_passes_per_token(self):
        hasher = MD5Hasher(threads=2)
        hasher.hash_batch([b"p", b"q"])
        loop_mon = hasher.circuit.loop_monitor
        # Each thread's token crosses the loop entry 4 times.
        assert loop_mon.transfer_count(0) == 4
        assert loop_mon.transfer_count(1) == 4


class TestCircuitConstruction:
    def test_bad_meb_kind(self):
        with pytest.raises(ValueError):
            MD5Circuit(meb="huge")

    def test_wave_shape_checked(self):
        circuit = MD5Circuit(threads=2)
        with pytest.raises(ValueError):
            circuit.run_wave([IV], [tuple([0] * 16)], 0)

    def test_area_components_exclude_store_ram(self):
        circuit = MD5Circuit(threads=2)
        comps = circuit.area_components()
        assert circuit.store in comps
        assert circuit.store.area_items() == []
        assert len(circuit.meb_components()) == 2


@settings(max_examples=10, deadline=None)
@given(
    msgs=st.lists(st.binary(min_size=0, max_size=80), min_size=1, max_size=3)
)
def test_circuit_matches_hashlib_property(msgs):
    hasher = MD5Hasher(threads=len(msgs))
    assert hasher.hash_batch(msgs) == [
        hashlib.md5(m).hexdigest() for m in msgs
    ]


class TestPipelinedRound:
    """Paper §V-A: the 16 steps 'could have been pipelined with minimum
    changes due to elasticity' — the round_stages variant is that change."""

    @pytest.mark.parametrize("stages", [2, 4, 8, 16])
    def test_pipelined_digests_correct(self, stages):
        hasher = MD5Hasher(threads=4, meb="reduced", round_stages=stages)
        msgs = [b"abc", b"hello", b"x" * 100, b""]
        assert hasher.hash_batch(msgs) == [
            hashlib.md5(m).hexdigest() for m in msgs
        ]

    def test_stage_count_must_divide_16(self):
        with pytest.raises(ValueError):
            MD5Circuit(threads=2, round_stages=3)

    def test_meb_count_grows_with_stages(self):
        assert len(MD5Circuit(threads=2, round_stages=1).meb_components()) == 2
        assert len(MD5Circuit(threads=2, round_stages=4).meb_components()) == 5

    def test_barrier_still_synchronizes_rounds(self):
        hasher = MD5Hasher(threads=2, round_stages=4)
        hasher.hash_batch([b"p", b"q"])
        assert hasher.circuit.barrier.releases == 4

    def test_partial_round_logic_step_alignment(self):
        from repro.apps.md5.datapath import partial_round_logic

        store = MessageStore("s", threads=1)
        store.write(0, 0, tuple(range(16)))
        token = MD5Token(IV, 0, 0, step_idx=3)
        with pytest.raises(SimulationError):
            partial_round_logic(token, 0, store, n_steps=4)

    def test_partial_rounds_compose_to_full_round(self):
        from repro.apps.md5.datapath import partial_round_logic

        store = MessageStore("s", threads=1)
        block = message_blocks(b"compose")[0]
        store.write(0, 0, block)
        token = MD5Token(IV, 0, 0)
        for _ in range(4):
            token = partial_round_logic(token, 0, store, n_steps=4)
        assert token.round_idx == 1
        assert token.step_idx == 0
        assert token.state == md5_round(IV, block, 0)


class TestCompiledRoundSteps:
    """The code-generated round datapath vs the step-by-step reference."""

    def test_all_round_windows_match_reference(self):
        from repro.apps.md5.datapath import compiled_round_steps

        rng = _random.Random(0xD5)
        for round_idx in range(ref.N_ROUNDS):
            state = tuple(rng.getrandbits(32) for _ in range(4))
            block = tuple(rng.getrandbits(32) for _ in range(16))
            # Full unrolled round.
            full = compiled_round_steps(round_idx, 0, ref.STEPS_PER_ROUND)
            expected = state
            for step in range(ref.STEPS_PER_ROUND):
                expected = ref.md5_step(expected, block, round_idx, step)
            assert full(state, block) == expected
            # Every pipelined slice width that divides the round.
            for n_steps in (1, 2, 4, 8):
                out = state
                for start in range(0, ref.STEPS_PER_ROUND, n_steps):
                    out = compiled_round_steps(round_idx, start, n_steps)(
                        out, block
                    )
                assert out == full(state, block)

    def test_round_logic_uses_compiled_path(self):
        store = MessageStore("s", threads=1)
        block = tuple(range(16))
        store.write(0, 0, block)
        token = MD5Token(ref.IV, 0, 0)
        out = round_logic(token, 0, store)
        assert out.state == ref.md5_round(ref.IV, block, 0)
        assert out.round_idx == 1
