"""Tests for single-thread elastic buffers (paper §II, Fig. 2).

Covers the FF-based 2-slot EB and the latch-based decomposition, the
EMPTY/HALF/FULL occupancy naming, full-throughput operation, stall
absorption (capacity 2), and FF/latch data-trace equivalence under random
traffic (hypothesis).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic import (
    ChannelMonitor,
    ElasticBuffer,
    ElasticChannel,
    LatchElasticBuffer,
    Sink,
    Source,
    stall_window,
)
from repro.kernel import build


def make_pipeline(buffer_cls, n_items=8, src_pattern=None, sink_pattern=None,
                  n_stages=1):
    """source -> EB^n_stages -> sink, returns (sim, source, sink, bufs, mons)."""
    chans = [ElasticChannel(f"ch{i}", width=16) for i in range(n_stages + 1)]
    source = Source("src", chans[0], items=list(range(n_items)),
                    pattern=src_pattern)
    bufs = [
        buffer_cls(f"eb{i}", chans[i], chans[i + 1]) for i in range(n_stages)
    ]
    sink = Sink("snk", chans[-1], pattern=sink_pattern)
    monitors = [ChannelMonitor(f"mon{i}", ch) for i, ch in enumerate(chans)]
    sim = build(*chans, source, *bufs, sink, *monitors)
    return sim, source, sink, bufs, monitors


@pytest.mark.parametrize("buffer_cls", [ElasticBuffer, LatchElasticBuffer])
class TestBufferBasics:
    def test_initial_state_empty(self, buffer_cls):
        sim, _src, _snk, bufs, _m = make_pipeline(buffer_cls)
        assert bufs[0].state == "EMPTY"
        assert bufs[0].occupancy == 0

    def test_all_items_delivered_in_order(self, buffer_cls):
        sim, _src, sink, _b, _m = make_pipeline(buffer_cls, n_items=8)
        sim.run(until=lambda s: sink.count == 8, max_cycles=100)
        assert sink.values() == list(range(8))

    def test_full_throughput_one_item_per_cycle(self, buffer_cls):
        sim, _src, sink, _b, _m = make_pipeline(buffer_cls, n_items=10)
        sim.run(until=lambda s: sink.count == 10, max_cycles=100)
        arrivals = sink.arrival_cycles()
        # After the initial fill latency, items arrive back-to-back.
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == 1 for g in gaps)

    def test_forward_latency_is_one_cycle(self, buffer_cls):
        sim, _src, sink, _b, _m = make_pipeline(buffer_cls, n_items=1)
        sim.run(until=lambda s: sink.count == 1, max_cycles=10)
        # Item enters the EB at cycle 0 and exits at cycle 1.
        assert sink.arrival_cycles() == [1]

    def test_capacity_two_absorbs_stall(self, buffer_cls):
        # Sink stalls for a long window; the EB must fill to exactly 2.
        sim, _src, _snk, bufs, _m = make_pipeline(
            buffer_cls, n_items=8, sink_pattern=stall_window(0, 6)
        )
        sim.run(cycles=6)
        assert bufs[0].occupancy == 2
        assert bufs[0].state == "FULL"

    def test_not_ready_when_full(self, buffer_cls):
        sim, _src, _snk, bufs, _m = make_pipeline(
            buffer_cls, n_items=8, sink_pattern=stall_window(0, 6)
        )
        sim.run(cycles=6)
        sim.settle()
        assert bufs[0].up.ready.value is False

    def test_drains_after_stall_release(self, buffer_cls):
        sim, _src, sink, _b, _m = make_pipeline(
            buffer_cls, n_items=8, sink_pattern=stall_window(2, 7)
        )
        sim.run(until=lambda s: sink.count == 8, max_cycles=100)
        assert sink.values() == list(range(8))

    def test_contents_oldest_first(self, buffer_cls):
        sim, _src, _snk, bufs, _m = make_pipeline(
            buffer_cls, n_items=4, sink_pattern=stall_window(0, 10)
        )
        sim.run(cycles=5)
        assert bufs[0].contents() == [0, 1]

    def test_no_protocol_violations_under_bursty_source(self, buffer_cls):
        sim, _src, sink, _b, mons = make_pipeline(
            buffer_cls,
            n_items=6,
            src_pattern=[True, False, False, True, True],
            sink_pattern=[True, True, False],
        )
        sim.run(until=lambda s: sink.count == 6, max_cycles=200)
        assert mons[0].transfer_count == 6
        assert mons[-1].transfer_count == 6


class TestDeepPipelines:
    def test_five_stage_pipeline_preserves_order(self):
        sim, _src, sink, _b, _m = make_pipeline(ElasticBuffer, n_items=12,
                                                n_stages=5)
        sim.run(until=lambda s: sink.count == 12, max_cycles=200)
        assert sink.values() == list(range(12))

    def test_five_stage_latency_equals_depth(self):
        sim, _src, sink, _b, _m = make_pipeline(ElasticBuffer, n_items=1,
                                                n_stages=5)
        sim.run(until=lambda s: sink.count == 1, max_cycles=50)
        assert sink.arrival_cycles() == [5]

    def test_pipeline_of_latch_buffers(self):
        sim, _src, sink, _b, _m = make_pipeline(LatchElasticBuffer, n_items=12,
                                                n_stages=4)
        sim.run(until=lambda s: sink.count == 12, max_cycles=200)
        assert sink.values() == list(range(12))

    def test_total_storage_bounds_inflight_items(self):
        # With the sink fully blocked, a 3-stage pipeline holds 3*2 items.
        sim, src, _snk, bufs, _m = make_pipeline(
            ElasticBuffer, n_items=20, n_stages=3,
            sink_pattern=lambda c: False,
        )
        sim.run(cycles=30)
        assert sum(b.occupancy for b in bufs) == 6
        assert all(b.state == "FULL" for b in bufs)


@settings(max_examples=60, deadline=None)
@given(
    src_bits=st.lists(st.booleans(), min_size=1, max_size=12),
    snk_bits=st.lists(st.booleans(), min_size=1, max_size=12),
    n_items=st.integers(min_value=1, max_value=15),
)
def test_ff_and_latch_buffers_deliver_identical_traces(src_bits, snk_bits, n_items):
    """Property: both EB styles move the same data in the same cycles."""
    results = []
    # Guarantee eventual progress: cyclic all-False patterns block forever.
    src_bits = src_bits + [True]
    snk_bits = snk_bits + [True]
    for cls in (ElasticBuffer, LatchElasticBuffer):
        sim, _src, sink, _b, _m = make_pipeline(
            cls, n_items=n_items,
            src_pattern=src_bits, sink_pattern=snk_bits, n_stages=2,
        )
        # Budget for the slowest admissible patterns: one transfer per
        # pattern period at each gate (~13 cycles/item at len<=13) plus
        # pipeline latency.
        sim.run(cycles=600)
        results.append(list(sink.received))
    ff_trace, latch_trace = results
    assert [d for _c, d in ff_trace] == [d for _c, d in latch_trace]
    assert len(ff_trace) == n_items


@settings(max_examples=40, deadline=None)
@given(
    snk_bits=st.lists(st.booleans(), min_size=1, max_size=10),
    n_items=st.integers(min_value=1, max_value=12),
)
def test_token_conservation_property(snk_bits, n_items):
    """Property: no token is ever lost or duplicated through an EB chain."""
    sim, src, sink, _b, mons = make_pipeline(
        ElasticBuffer, n_items=n_items, sink_pattern=snk_bits + [True],
        n_stages=3,
    )
    sim.run(cycles=200)
    assert sink.values() == list(range(n_items))
    for mon in mons:
        assert mon.values() == list(range(n_items))
