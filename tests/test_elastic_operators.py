"""Tests for single-thread join/fork/branch/merge (paper §II, Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic import (
    Branch,
    ChannelMonitor,
    EagerFork,
    ElasticBuffer,
    ElasticChannel,
    Join,
    LazyFork,
    Merge,
    Sink,
    Source,
)
from repro.kernel import ProtocolError, build


class TestJoin:
    def make(self, items_a, items_b, pattern_a=None, pattern_b=None,
             sink_pattern=None):
        cha = ElasticChannel("cha", width=8)
        chb = ElasticChannel("chb", width=8)
        out = ElasticChannel("out", width=16)
        src_a = Source("sa", cha, items=items_a, pattern=pattern_a)
        src_b = Source("sb", chb, items=items_b, pattern=pattern_b)
        join = Join("join", [cha, chb], out)
        sink = Sink("snk", out, pattern=sink_pattern)
        sim = build(cha, chb, out, src_a, src_b, join, sink)
        return sim, sink

    def test_pairs_aligned_in_order(self):
        sim, sink = self.make([1, 2, 3], [10, 20, 30])
        sim.run(until=lambda s: sink.count == 3, max_cycles=50)
        assert sink.values() == [(1, 10), (2, 20), (3, 30)]

    def test_slow_input_throttles_both(self):
        sim, sink = self.make(
            [1, 2, 3], [10, 20, 30], pattern_b=[True, False, False]
        )
        sim.run(until=lambda s: sink.count == 3, max_cycles=100)
        assert sink.values() == [(1, 10), (2, 20), (3, 30)]

    def test_custom_combine(self):
        cha = ElasticChannel("cha", width=8)
        chb = ElasticChannel("chb", width=8)
        out = ElasticChannel("out", width=8)
        src_a = Source("sa", cha, items=[1, 2])
        src_b = Source("sb", chb, items=[10, 20])
        join = Join("join", [cha, chb], out, combine=lambda a, b: a + b)
        sink = Sink("snk", out)
        sim = build(cha, chb, out, src_a, src_b, join, sink)
        sim.run(until=lambda s: sink.count == 2, max_cycles=50)
        assert sink.values() == [11, 22]

    def test_three_way_join(self):
        chs = [ElasticChannel(f"ch{i}", width=8) for i in range(3)]
        out = ElasticChannel("out", width=24)
        srcs = [
            Source(f"s{i}", ch, items=[i * 10 + 1, i * 10 + 2])
            for i, ch in enumerate(chs)
        ]
        join = Join("join", chs, out)
        sink = Sink("snk", out)
        sim = build(*chs, out, *srcs, join, sink)
        sim.run(until=lambda s: sink.count == 2, max_cycles=50)
        assert sink.values() == [(1, 11, 21), (2, 12, 22)]

    def test_join_requires_two_inputs(self):
        cha = ElasticChannel("cha")
        out = ElasticChannel("out")
        with pytest.raises(ValueError):
            Join("join", [cha], out)


@pytest.mark.parametrize("fork_cls", [LazyFork, EagerFork])
class TestFork:
    def make(self, fork_cls, items, pat_a=None, pat_b=None):
        inp = ElasticChannel("inp", width=8)
        outa = ElasticChannel("outa", width=8)
        outb = ElasticChannel("outb", width=8)
        src = Source("src", inp, items=items)
        fork = fork_cls("fork", inp, [outa, outb])
        snk_a = Sink("ska", outa, pattern=pat_a)
        snk_b = Sink("skb", outb, pattern=pat_b)
        sim = build(inp, outa, outb, src, fork, snk_a, snk_b)
        return sim, snk_a, snk_b

    def test_both_sinks_get_all_items(self, fork_cls):
        sim, ska, skb = self.make(fork_cls, [1, 2, 3])
        sim.run(until=lambda s: ska.count == 3 and skb.count == 3,
                max_cycles=50)
        assert ska.values() == [1, 2, 3]
        assert skb.values() == [1, 2, 3]

    def test_slow_consumer_throttles(self, fork_cls):
        sim, ska, skb = self.make(fork_cls, [1, 2, 3],
                                  pat_b=[True, False, False])
        sim.run(until=lambda s: ska.count == 3 and skb.count == 3,
                max_cycles=100)
        assert ska.values() == [1, 2, 3]
        assert skb.values() == [1, 2, 3]

    def test_fork_requires_two_outputs(self, fork_cls):
        inp = ElasticChannel("inp")
        out = ElasticChannel("out")
        with pytest.raises(ValueError):
            fork_cls("fork", inp, [out])


class TestEagerVsLazyFork:
    def test_eager_fork_serves_fast_consumer_early(self):
        """With consumer B stalled, eager delivers to A immediately but lazy
        withholds; we observe it via A's arrival cycles."""
        arrivals = {}
        for cls in (LazyFork, EagerFork):
            inp = ElasticChannel("inp", width=8)
            outa = ElasticChannel("outa", width=8)
            outb = ElasticChannel("outb", width=8)
            src = Source("src", inp, items=[1])
            fork = cls("fork", inp, [outa, outb])
            ska = Sink("ska", outa)
            skb = Sink("skb", outb, pattern=lambda c: c >= 4)
            sim = build(inp, outa, outb, src, fork, ska, skb)
            sim.run(until=lambda s: ska.count == 1 and skb.count == 1,
                    max_cycles=50)
            arrivals[cls.__name__] = ska.arrival_cycles()[0]
        assert arrivals["EagerFork"] == 0
        assert arrivals["LazyFork"] == 4


class TestBranchMerge:
    def make_if_then_else(self, items, sel, strict=True):
        """branch -> (even path EB, odd path EB) -> merge."""
        inp = ElasticChannel("inp", width=8)
        t0 = ElasticChannel("t0", width=8)
        t1 = ElasticChannel("t1", width=8)
        b0 = ElasticChannel("b0", width=8)
        b1 = ElasticChannel("b1", width=8)
        out = ElasticChannel("out", width=8)
        src = Source("src", inp, items=items)
        branch = Branch("br", inp, [t0, t1], selector=sel)
        eb0 = ElasticBuffer("eb0", t0, b0)
        eb1 = ElasticBuffer("eb1", t1, b1)
        merge = Merge("mg", [b0, b1], out, strict=strict)
        sink = Sink("snk", out)
        sim = build(inp, t0, t1, b0, b1, out, src, branch, eb0, eb1, merge,
                    sink)
        return sim, sink

    def test_branch_routes_by_condition(self):
        inp = ElasticChannel("inp", width=8)
        outs = [ElasticChannel(f"o{i}", width=8) for i in range(2)]
        src = Source("src", inp, items=[1, 2, 3, 4])
        branch = Branch("br", inp, outs, selector=lambda d: d % 2)
        sinks = [Sink(f"sk{i}", ch) for i, ch in enumerate(outs)]
        sim = build(inp, *outs, src, branch, *sinks)
        sim.run(until=lambda s: sinks[0].count + sinks[1].count == 4,
                max_cycles=50)
        assert sinks[0].values() == [2, 4]
        assert sinks[1].values() == [1, 3]

    def test_branch_selector_bounds_checked(self):
        inp = ElasticChannel("inp", width=8)
        outs = [ElasticChannel(f"o{i}", width=8) for i in range(2)]
        src = Source("src", inp, items=[5])
        branch = Branch("br", inp, outs, selector=lambda d: 7)
        sinks = [Sink(f"sk{i}", ch) for i, ch in enumerate(outs)]
        sim = build(inp, *outs, src, branch, *sinks)
        with pytest.raises(ProtocolError):
            sim.run(cycles=2)

    def test_branch_route_transform(self):
        inp = ElasticChannel("inp", width=8)
        outs = [ElasticChannel(f"o{i}", width=8) for i in range(2)]
        src = Source("src", inp, items=[(0, "a"), (1, "b")])
        branch = Branch("br", inp, outs, selector=lambda d: d[0],
                        route=lambda d: d[1])
        sinks = [Sink(f"sk{i}", ch) for i, ch in enumerate(outs)]
        sim = build(inp, *outs, src, branch, *sinks)
        sim.run(until=lambda s: sinks[0].count + sinks[1].count == 2,
                max_cycles=50)
        assert sinks[0].values() == ["a"]
        assert sinks[1].values() == ["b"]

    def test_if_then_else_returns_all_items(self):
        items = [3, 8, 1, 6, 7, 2]
        sim, sink = self.make_if_then_else(items, sel=lambda d: d % 2)
        sim.run(until=lambda s: sink.count == len(items), max_cycles=100)
        assert sorted(sink.values()) == sorted(items)

    def test_merge_strict_rejects_simultaneous_valids(self):
        cha = ElasticChannel("cha", width=8)
        chb = ElasticChannel("chb", width=8)
        out = ElasticChannel("out", width=8)
        sa = Source("sa", cha, items=[1])
        sb = Source("sb", chb, items=[2])
        merge = Merge("mg", [cha, chb], out, strict=True)
        sink = Sink("snk", out)
        sim = build(cha, chb, out, sa, sb, merge, sink)
        with pytest.raises(ProtocolError):
            sim.run(cycles=2)

    def test_merge_nonstrict_serializes(self):
        cha = ElasticChannel("cha", width=8)
        chb = ElasticChannel("chb", width=8)
        out = ElasticChannel("out", width=8)
        sa = Source("sa", cha, items=[1, 3])
        sb = Source("sb", chb, items=[2, 4])
        merge = Merge("mg", [cha, chb], out, strict=False)
        sink = Sink("snk", out)
        sim = build(cha, chb, out, sa, sb, merge, sink)
        sim.run(until=lambda s: sink.count == 4, max_cycles=50)
        assert sorted(sink.values()) == [1, 2, 3, 4]


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                      max_size=20))
def test_branch_merge_loopback_conserves_tokens(items):
    """Property: an if-then-else with buffered arms never loses/dups data."""
    inp = ElasticChannel("inp", width=8)
    t0 = ElasticChannel("t0", width=8)
    t1 = ElasticChannel("t1", width=8)
    b0 = ElasticChannel("b0", width=8)
    b1 = ElasticChannel("b1", width=8)
    out = ElasticChannel("out", width=8)
    src = Source("src", inp, items=items)
    branch = Branch("br", inp, [t0, t1], selector=lambda d: d % 2)
    eb0 = ElasticBuffer("eb0", t0, b0)
    eb1 = ElasticBuffer("eb1", t1, b1)
    merge = Merge("mg", [b0, b1], out, strict=False)
    mon = ChannelMonitor("mon", out)
    sink = Sink("snk", out)
    sim = build(inp, t0, t1, b0, b1, out, src, branch, eb0, eb1, merge, mon,
                sink)
    sim.run(cycles=len(items) * 4 + 20)
    assert sorted(sink.values()) == sorted(items)
    evens = [v for v in sink.values() if v % 2 == 0]
    odds = [v for v in sink.values() if v % 2 == 1]
    assert evens == [v for v in items if v % 2 == 0]
    assert odds == [v for v in items if v % 2 == 1]
