"""Tests for grant policies and the round-robin arbiter."""

import pytest

from repro.core import FixedPriorityArbiter, GrantPolicy, RoundRobinArbiter


class TestGrantPolicy:
    def test_masked_requires_both(self):
        req = GrantPolicy.MASKED.requests([True, True, False], [True, False, True])
        assert req == [True, False, False]

    def test_unmasked_ignores_ready(self):
        req = GrantPolicy.UNMASKED.requests([True, False, True], [False, False, False])
        assert req == [True, False, True]

    def test_fallback_equals_masked_when_possible(self):
        req = GrantPolicy.MASKED_FALLBACK.requests([True, True], [False, True])
        assert req == [False, True]

    def test_fallback_probes_when_nothing_ready(self):
        req = GrantPolicy.MASKED_FALLBACK.requests([True, True], [False, False])
        assert req == [True, True]

    def test_fallback_empty_when_nothing_valid(self):
        req = GrantPolicy.MASKED_FALLBACK.requests([False, False], [True, True])
        assert req == [False, False]


class TestRoundRobinArbiter:
    def test_no_requests_no_grant(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False] * 4) is None

    def test_grants_from_pointer(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([True, True, True, True]) == 0

    def test_pointer_advances_after_transfer(self):
        arb = RoundRobinArbiter(3)
        g = arb.grant([True, True, True])
        arb.note(g, transferred=True)
        arb.commit()
        assert arb.grant([True, True, True]) == 1

    def test_round_robin_is_fair(self):
        arb = RoundRobinArbiter(3)
        grants = []
        for _ in range(9):
            g = arb.grant([True, True, True])
            grants.append(g)
            arb.note(g, transferred=True)
            arb.commit()
        assert grants == [0, 1, 2] * 3

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, False, True, False]) == 2

    def test_wraps_around(self):
        arb = RoundRobinArbiter(3)
        g = arb.grant([False, False, True])
        arb.note(g, transferred=True)
        arb.commit()
        assert arb.grant([True, False, False]) == 0

    def test_rotate_on_stall_sweeps_waiters(self):
        arb = RoundRobinArbiter(3, rotate_on_stall=True)
        grants = []
        for _ in range(3):
            g = arb.grant([True, True, True])
            grants.append(g)
            arb.note(g, transferred=False)  # probing grants, no transfer
            arb.commit()
        assert grants == [0, 1, 2]

    def test_no_rotation_without_flag(self):
        arb = RoundRobinArbiter(3, rotate_on_stall=False)
        for _ in range(3):
            g = arb.grant([True, True, True])
            arb.note(g, transferred=False)
            arb.commit()
        assert arb.grant([True, True, True]) == 0

    def test_pointer_holds_when_idle(self):
        arb = RoundRobinArbiter(3)
        g = arb.grant([False, True, False])
        arb.note(g, transferred=True)
        arb.commit()
        arb.note(None, transferred=False)
        arb.commit()
        assert arb.pointer == 2

    def test_grant_is_pure(self):
        arb = RoundRobinArbiter(3)
        for _ in range(5):
            assert arb.grant([True, False, True]) == 0

    def test_request_length_checked(self):
        arb = RoundRobinArbiter(3)
        with pytest.raises(ValueError):
            arb.grant([True])

    def test_reset(self):
        arb = RoundRobinArbiter(3)
        g = arb.grant([True, True, True])
        arb.note(g, True)
        arb.commit()
        arb.reset()
        assert arb.pointer == 0

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestFixedPriorityArbiter:
    def test_lowest_index_always_wins(self):
        arb = FixedPriorityArbiter(3)
        for _ in range(4):
            g = arb.grant([True, True, True])
            assert g == 0
            arb.note(g, transferred=True)
            arb.commit()

    def test_starves_higher_indices(self):
        arb = FixedPriorityArbiter(2)
        grants = []
        for _ in range(6):
            g = arb.grant([True, True])
            grants.append(g)
            arb.note(g, True)
            arb.commit()
        assert grants == [0] * 6
