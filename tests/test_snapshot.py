"""Snapshot/restore/fork semantics of the simulation kernel.

The contract under test (see ``repro/kernel/snapshot.py``):

* a fork taken mid-run and resumed is indistinguishable from never
  having forked, under every engine;
* one snapshot supports any number of restores — running after a
  restore never corrupts the snapshot (monitor columns and endpoint
  logs are deep-copied, not aliased);
* restore is identity-preserving: the lists and helper objects bound
  into compiled closures keep their identities;
* restore composes with ``rebuild()`` (collaborator swaps) and rewinds
  out-of-band inputs (``push``) applied after the snapshot.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import FullMEB, ReducedMEB
from repro.kernel import SnapshotError
from repro.kernel.errors import SimulationError

from tests.conftest import make_mt_pipeline

ENGINES = ("naive", "event", "compiled")


def _fingerprint(sim, sink, monitor):
    sim.settle()
    return (
        sim.cycle,
        list(sink.received),
        monitor.transfers,
        monitor.cycles_observed,
        tuple(sig.value for sig in sim.signals),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("meb_cls", [FullMEB, ReducedMEB])
def test_restore_resumes_identically(engine, meb_cls):
    items = [list(range(15)) for _ in range(4)]

    def make():
        return make_mt_pipeline(
            meb_cls, threads=4, items=items, n_stages=3, engine=engine
        )

    sim, _src, sink, _mebs, mons = make()
    sim.run(cycles=9)
    snap = sim.snapshot()
    sim.run(cycles=40)
    interrupted = _fingerprint(sim, sink, mons[-1])

    sim.restore(snap)
    assert sim.cycle == 9
    sim.run(cycles=40)
    assert _fingerprint(sim, sink, mons[-1]) == interrupted

    # ... and both equal a run that never snapshotted at all.
    ref_sim, _s, ref_sink, _m, ref_mons = make()
    ref_sim.run(cycles=49)
    assert _fingerprint(ref_sim, ref_sink, ref_mons[-1]) == interrupted


@pytest.mark.parametrize("engine", ENGINES)
def test_snapshot_not_aliased_by_later_run(engine):
    items = [list(range(10)) for _ in range(2)]
    sim, _src, sink, _mebs, mons = make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, engine=engine
    )
    sim.run(cycles=6)
    snap = sim.snapshot()
    reference = _fingerprint(sim, sink, mons[-1])
    # Grow every monitor column and endpoint log well past the
    # snapshot point, restore, and check the state is bit-identical to
    # the moment of the snapshot — twice, to prove restoring itself
    # does not consume or alias the snapshot.
    for _ in range(2):
        sim.run(cycles=30)
        sim.restore(snap)
        assert _fingerprint(sim, sink, mons[-1]) == reference


def test_restore_preserves_closure_bindings():
    items = [list(range(8)) for _ in range(2)]
    sim, src, sink, mebs, mons = make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, engine="compiled"
    )
    sim.run(cycles=5)
    snap = sim.snapshot()
    monitor = mons[-1]
    col_id = id(monitor._tr_cycle)
    received_id = id(sink.received)
    arbiter = mebs[0].arbiter
    sim.run(cycles=10)
    sim.restore(snap)
    # The compiled tick plans captured these objects at compile time;
    # restore must write through them, never rebind.
    assert id(monitor._tr_cycle) == col_id
    assert id(sink.received) == received_id
    assert mebs[0].arbiter is arbiter
    # And the design still runs correctly through the same closures.
    sim.run(cycles=30)
    assert sink.count == 16


def test_restore_rewinds_pushes():
    sim, src, sink, _mebs, _mons = make_mt_pipeline(
        FullMEB, threads=2, items=[[], []], n_stages=2, engine="compiled"
    )
    src.push(0, 1)
    sim.run(cycles=6)
    snap = sim.snapshot()
    src.push(1, 2)
    sim.run(cycles=20)
    assert sink.count == 2
    sim.restore(snap)
    sim.run(cycles=20)
    # The post-snapshot push is gone; only the first item ever arrives.
    assert [d for _c, _t, d in sink.received] == [1]


def test_fork_context_restores_on_exception():
    sim, src, sink, _mebs, _mons = make_mt_pipeline(
        FullMEB, threads=2, items=[[], []], n_stages=2, engine="compiled"
    )
    src.push(0, 7)
    sim.run(cycles=4)
    with pytest.raises(SimulationError):
        with sim.fork():
            src.push(1, 8)
            sim.run(cycles=10)
            raise SimulationError("variant failed")
    assert sim.cycle == 4
    sim.run(cycles=20)
    assert [d for _c, _t, d in sink.received] == [7]


def test_fork_variants_share_warmup():
    sim, src, sink, _mebs, mons = make_mt_pipeline(
        FullMEB, threads=2, items=[[], []], n_stages=2, engine="compiled"
    )
    src.push(0, 100)
    sim.run(cycles=8)  # warm-up paid once
    outcomes = []
    for value in (201, 202, 203):
        with sim.fork():
            src.push(1, value)
            sim.run(cycles=25)
            outcomes.append([d for _c, _t, d in sink.received])
    assert outcomes == [[100, 201], [100, 202], [100, 203]]
    # After the last fork the branch point state is back.
    assert sim.cycle == 8


def test_restore_after_rebuild():
    items = [list(range(12)) for _ in range(2)]
    sim, _src, sink, mebs, _mons = make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, engine="compiled"
    )
    sim.run(cycles=5)
    snap = sim.snapshot()
    sim.run(cycles=7)
    sim.rebuild()  # recompile slot/seq bindings mid-run
    sim.run(cycles=3)
    sim.restore(snap)
    assert sim.cycle == 5
    sim.run(cycles=60)
    ref_sim, _s, ref_sink, _m, _mm = make_mt_pipeline(
        FullMEB, threads=2, items=items, n_stages=2, engine="compiled"
    )
    ref_sim.run(cycles=65)
    assert list(sink.received) == list(ref_sink.received)


def test_restore_foreign_snapshot_rejected():
    sim_a, *_rest = make_mt_pipeline(
        FullMEB, threads=2, items=[[], []], n_stages=2, engine="compiled"
    )
    sim_b, *_rest = make_mt_pipeline(
        FullMEB, threads=2, items=[[], []], n_stages=2, engine="compiled"
    )
    snap = sim_a.snapshot()
    with pytest.raises(SnapshotError):
        sim_b.restore(snap)


def test_snapshot_hook_round_trip():
    from repro.kernel import Component, Simulator

    class Counter(Component):
        def __init__(self):
            super().__init__("counter")
            self.out = self.output("out", init=0)
            self.value = 0

        def combinational(self):
            self.out.set(self.value)

        def capture(self):
            self._next = self.value + 1

        def commit(self):
            self.value = self._next
            return True

        def reset(self):
            self.value = 0

    external = {"ticks": 0}
    comp = Counter()
    sim = Simulator(engine="compiled")
    sim.add(comp)
    sim.add_snapshot_hook(
        lambda: external["ticks"],
        lambda v: external.update(ticks=v),
    )
    sim.add_observer(lambda s: external.update(ticks=external["ticks"] + 1))
    sim.reset()
    sim.run(cycles=5)
    snap = sim.snapshot()
    sim.run(cycles=5)
    assert external["ticks"] == 10
    sim.restore(snap)
    assert external["ticks"] == 5
    assert comp.value == 5


def test_md5_fork_mid_wave_matches_uninterrupted():
    """Fork inside the MD5 loop: barrier, arbiter pointers, message
    store and the circuit-level round counter all rewind together."""
    from repro.apps.md5 import MD5Hasher
    from repro.apps.md5 import reference as ref
    from repro.apps.md5.datapath import MD5Token

    def start_wave(hasher, msgs):
        circ = hasher.circuit
        blocks = [ref.message_blocks(m)[0] for m in msgs]
        for t, block in enumerate(blocks):
            circ.store.write(t, 0, block)
            circ.source.push(t, MD5Token(ref.IV, 0, 0))
        for stage in circ.stages:
            stage.invalidate()
        return circ

    msgs = [f"snap-{i}".encode() for i in range(4)]
    circ = start_wave(MD5Hasher(threads=4, engine="compiled"), msgs)
    circ.sim.run(cycles=11)
    snap = circ.sim.snapshot()
    counter_at_snap = circ.round_counter
    circ.sim.run(until=lambda _s: circ.sink.count == 4, max_cycles=2000)
    first = sorted((t, tok.state) for _c, t, tok in circ.sink.received)
    cycles_first = circ.sim.cycle
    assert circ.round_counter != counter_at_snap  # rounds advanced

    circ.sim.restore(snap)
    assert circ.round_counter == counter_at_snap  # hook rewound it
    circ.sim.run(until=lambda _s: circ.sink.count == 4, max_cycles=2000)
    second = sorted((t, tok.state) for _c, t, tok in circ.sink.received)
    assert first == second
    assert circ.sim.cycle == cycles_first

    digests = [
        ref.digest_bytes(
            tuple((a + b) & ref.MASK32 for a, b in zip(ref.IV, state))
        ).hex()
        for _t, state in second
    ]
    assert digests == [hashlib.md5(m).hexdigest() for m in msgs]
